//! Query-time benches on small-graph analogues (Tables 2 and 3 in
//! miniature): every method, equal and random loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_bench::runner::{build_method, MethodId, RunConfig};
use hoplite_bench::small_datasets;
use hoplite_bench::workload::{equal_workload, random_workload};

fn bench_queries_small(c: &mut Criterion) {
    let cfg = RunConfig::default();
    let spec = small_datasets()
        .into_iter()
        .find(|s| s.name == "agrocyc")
        .expect("known dataset");
    let dag = spec.generate(0.5);
    let n_queries = 10_000usize;
    let equal = equal_workload(&dag, n_queries, 1);
    let random = random_workload(&dag, n_queries, 2);

    for (load_name, load) in [("equal", &equal), ("random", &random)] {
        let mut group = c.benchmark_group(format!("query_small/{load_name}"));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(2));
        group.throughput(Throughput::Elements(load.len() as u64));
        for mid in MethodId::paper_columns() {
            let built = build_method(mid, &dag, &cfg);
            let Some(idx) = built.index else {
                continue; // budget-failed methods have no query time
            };
            group.bench_with_input(
                BenchmarkId::new(mid.name(), "agrocyc@0.5"),
                load,
                |b, load| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for &(u, v) in &load.pairs {
                            hits += idx.query(u, v) as usize;
                        }
                        std::hint::black_box(hits)
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries_small);
criterion_main!(benches);
