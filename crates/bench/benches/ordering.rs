//! Ablation: Distribution-Labeling vertex order (§5.2).
//!
//! The paper selects the degree product `(|N_out|+1)·(|N_in|+1)` as the
//! rank function. This bench compares construction time and query time
//! (which tracks label size) across the alternative orders; the
//! degree-product order should win or tie both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_bench::small_datasets;
use hoplite_bench::workload::equal_workload;
use hoplite_core::{DistributionLabeling, DlConfig, OrderKind, ReachIndex};

fn orders() -> [(&'static str, OrderKind); 5] {
    [
        ("deg-product", OrderKind::DegProduct),
        ("deg-sum", OrderKind::DegSum),
        ("random", OrderKind::Random(42)),
        ("topological", OrderKind::Topological),
        // §5.2's exact covering-power order (needs the TC; only viable
        // at bench scale — which is the paper's point).
        ("cov-size", OrderKind::CoverSize),
    ]
}

fn bench_ordering(c: &mut Criterion) {
    let dag = small_datasets()
        .into_iter()
        .find(|s| s.name == "arxiv")
        .expect("known dataset")
        .generate(0.15);
    let load = equal_workload(&dag, 5_000, 7);

    let mut group = c.benchmark_group("dl_order/build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, order) in orders() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, &order| {
            b.iter(|| {
                std::hint::black_box(DistributionLabeling::build(
                    &dag,
                    &DlConfig {
                        order,
                        ..DlConfig::default()
                    },
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dl_order/query");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(load.len() as u64));
    for (name, order) in orders() {
        let dl = DistributionLabeling::build(
            &dag,
            &DlConfig {
                order,
                ..DlConfig::default()
            },
        );
        // Surface the label-size consequence of the order choice.
        eprintln!(
            "# dl_order {name}: total label entries = {}",
            dl.labeling().total_entries()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &load, |b, load| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &load.pairs {
                    hits += dl.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
