//! Ablation: backbone locality ε and core-graph stop size (§4).
//!
//! The paper fixes ε = 2 for HL ("when ε = 2, the backbone can already
//! be significantly reduced") and stops decomposition at a small core.
//! This bench sweeps ε ∈ {1, 2, 3} (ε = 1 ≈ TF-label's folding) and
//! the core-size limit, measuring construction and query time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_bench::small_datasets;
use hoplite_bench::workload::equal_workload;
use hoplite_core::{HierarchicalLabeling, HlConfig, ReachIndex};

fn bench_epsilon(c: &mut Criterion) {
    let dag = small_datasets()
        .into_iter()
        .find(|s| s.name == "agrocyc")
        .expect("known dataset")
        .generate(0.5);
    let load = equal_workload(&dag, 5_000, 5);

    let mut group = c.benchmark_group("hl_epsilon/build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for eps in [1u32, 2, 3] {
        let cfg = HlConfig {
            eps,
            ..HlConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(eps), &cfg, |b, cfg| {
            b.iter(|| std::hint::black_box(HierarchicalLabeling::build(&dag, cfg)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hl_epsilon/query");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(load.len() as u64));
    for eps in [1u32, 2, 3] {
        let cfg = HlConfig {
            eps,
            ..HlConfig::default()
        };
        let hl = HierarchicalLabeling::build(&dag, &cfg);
        eprintln!(
            "# hl eps={eps}: levels {:?}, label entries {}",
            hl.level_sizes(),
            hl.labeling().total_entries()
        );
        group.bench_with_input(BenchmarkId::from_parameter(eps), &load, |b, load| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &load.pairs {
                    hits += hl.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hl_core_limit/build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for limit in [64usize, 512, 4096] {
        let cfg = HlConfig {
            core_size_limit: limit,
            ..HlConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(limit), &cfg, |b, cfg| {
            b.iter(|| std::hint::black_box(HierarchicalLabeling::build(&dag, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon);
criterion_main!(benches);
