//! Ablation: query-load mix (§6.2, observation 3).
//!
//! "The reachability oracle approaches are slightly slower on the
//! random query load than on the equal query load … to determine
//! vertex u cannot reach vertex v, the query processing has to
//! completely scan L_out(u) and L_in(v)." Sweeping the positive-query
//! ratio from 0 % to 100 % makes that effect directly visible for DL
//! and contrasts it with GRAIL (where *positive* queries are the
//! expensive ones, needing a DFS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_baselines::Grail;
use hoplite_bench::small_datasets;
use hoplite_bench::workload::mixed_workload;
use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};

fn bench_workload_mix(c: &mut Criterion) {
    let dag = small_datasets()
        .into_iter()
        .find(|s| s.name == "arxiv")
        .expect("known dataset")
        .generate(0.2);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let grail = Grail::build(&dag, 5, 11);

    let mut group = c.benchmark_group("workload_mix");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    for pct in [0u32, 25, 50, 75, 100] {
        let load = mixed_workload(&dag, 5_000, pct as f64 / 100.0, 13);
        group.throughput(Throughput::Elements(load.len() as u64));
        group.bench_with_input(BenchmarkId::new("DL", pct), &load, |b, load| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &load.pairs {
                    hits += dl.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("GRAIL", pct), &load, |b, load| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &load.pairs {
                    hits += grail.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workload_mix);
criterion_main!(benches);
