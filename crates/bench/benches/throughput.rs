//! Multi-core query throughput of a frozen Distribution-Labeling
//! oracle (`hoplite_core::parallel`).
//!
//! Not a paper table — the 2013 evaluation is single-threaded — but the
//! serving scenario its introduction motivates: a built oracle is
//! immutable, so query throughput should scale with reader threads.
//! This bench pins the oracle + workload and sweeps the thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_bench::small_datasets;
use hoplite_bench::workload::equal_workload;
use hoplite_core::parallel::par_count_reachable;
use hoplite_core::{DistributionLabeling, DlConfig};

fn bench_parallel_throughput(c: &mut Criterion) {
    let spec = small_datasets()
        .into_iter()
        .find(|s| s.name == "arxiv")
        .expect("known dataset");
    let dag = spec.generate(0.5);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let load = equal_workload(&dag, 100_000, 7);

    let mut group = c.benchmark_group("throughput/equal");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(load.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("DL", format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::hint::black_box(par_count_reachable(dl.labeling(), &load.pairs, threads))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_throughput);
criterion_main!(benches);
