//! Query-time benches on a large-graph analogue (Tables 5 and 6 in
//! miniature). Only the methods that scale are included — the same set
//! the paper reports on large graphs (the oracles, GRAIL, PW8, INT,
//! PL, TF), plus the SCARAB variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_bench::large_datasets;
use hoplite_bench::runner::{build_method, MethodId, RunConfig};
use hoplite_bench::workload::{equal_workload, random_workload};

fn bench_queries_large(c: &mut Criterion) {
    let cfg = RunConfig {
        budget_bytes: 1 << 30,
        ..RunConfig::default()
    };
    let spec = large_datasets()
        .into_iter()
        .find(|s| s.name == "citeseer")
        .expect("known dataset");
    let dag = spec.generate(0.1); // ~70k vertices
    let n_queries = 10_000usize;
    let equal = equal_workload(&dag, n_queries, 1);
    let random = random_workload(&dag, n_queries, 2);

    let scalable = [
        MethodId::Grail,
        MethodId::GrailStar,
        MethodId::Pwah8,
        MethodId::Interval,
        MethodId::PrunedLandmark,
        MethodId::TfLabel,
        MethodId::Hl,
        MethodId::Dl,
    ];

    for (load_name, load) in [("equal", &equal), ("random", &random)] {
        let mut group = c.benchmark_group(format!("query_large/{load_name}"));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(2));
        group.throughput(Throughput::Elements(load.len() as u64));
        for mid in scalable {
            let built = build_method(mid, &dag, &cfg);
            let Some(idx) = built.index else {
                continue;
            };
            group.bench_with_input(
                BenchmarkId::new(mid.name(), "citeseer@0.1"),
                load,
                |b, load| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for &(u, v) in &load.pairs {
                            hits += idx.query(u, v) as usize;
                        }
                        std::hint::black_box(hits)
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries_large);
criterion_main!(benches);
