//! Label-intersection kernel ablation: plain merge vs the adaptive
//! galloping variant.
//!
//! The paper's §1 observation — sorted vectors close the query-time gap
//! hash-set labels created — makes the intersection kernel *the* query
//! path. This bench answers the follow-on design question: when do we
//! want galloping? On the near-equal list lengths real hop labels have
//! (measured on the DL labels of a dataset analogue), the merge wins;
//! galloping only pays on pathologically skewed pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use hoplite_bench::small_datasets;
use hoplite_bench::workload::random_workload;
use hoplite_core::label::{sorted_intersect, sorted_intersect_adaptive};
use hoplite_core::{DistributionLabeling, DlConfig};
use hoplite_graph::gen::Rng;

fn bench_real_labels(c: &mut Criterion) {
    let spec = small_datasets()
        .into_iter()
        .find(|s| s.name == "arxiv")
        .expect("known dataset");
    let dag = spec.generate(0.5);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let labeling = dl.labeling();
    let load = random_workload(&dag, 50_000, 3);

    let mut group = c.benchmark_group("intersect/real_labels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits += sorted_intersect(labeling.out_label(u), labeling.in_label(v)) as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits +=
                    sorted_intersect_adaptive(labeling.out_label(u), labeling.in_label(v)) as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

fn bench_skewed_lists(c: &mut Criterion) {
    // Synthetic skew: one 8-element list against increasingly long
    // lists — the regime galloping is built for.
    let mut rng = Rng::new(1234);
    let small: Vec<u32> = {
        let mut v: Vec<u32> = (0..8).map(|_| rng.gen_range(1 << 20) as u32).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut group = c.benchmark_group("intersect/skewed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for log_len in [8u32, 12, 16] {
        let len = 1usize << log_len;
        let mut large: Vec<u32> = (0..len).map(|_| rng.gen_range(1 << 20) as u32).collect();
        large.sort_unstable();
        large.dedup();
        group.bench_with_input(BenchmarkId::new("merge", len), &large, |b, large| {
            b.iter(|| std::hint::black_box(sorted_intersect(&small, large)))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", len), &large, |b, large| {
            b.iter(|| std::hint::black_box(sorted_intersect_adaptive(&small, large)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_real_labels, bench_skewed_lists);
criterion_main!(benches);
