//! SCARAB (Jin, Ruan, Dey & Yu, SIGMOD 2012) — the scaling framework
//! behind the paper's GRAIL\* and PATH-TREE\* columns (§2.3).
//!
//! A reachability backbone (ε = 2 in the paper's experiments) carries
//! the long-range "reachability flow"; any existing index is built only
//! on the much smaller backbone. A query `u → v`:
//!
//! 1. forward-BFS from `u` up to ε steps — if `v` appears the pair is
//!    local; the BFS also collects `u`'s *entry* backbone vertices
//!    (first-reached, as in Formulas 1–2);
//! 2. backward-BFS from `v` collects its *exit* vertices;
//! 3. the inner index decides whether any entry reaches any exit.
//!
//! This trades query time (two local BFS + |entries|·|exits| inner
//! queries — the paper measures 2–3× slower than the raw index) for
//! the ability to build the inner index at all on large graphs.

use std::cell::RefCell;

use hoplite_core::backbone::Backbone;
use hoplite_core::ReachIndex;
use hoplite_graph::traversal::TraversalScratch;
use hoplite_graph::{Dag, DiGraph, GraphError, VertexId};

/// A SCARAB-wrapped reachability index.
pub struct Scarab<I> {
    g: DiGraph,
    eps: u32,
    backbone: Backbone,
    inner: I,
    name: &'static str,
    scratch: RefCell<ScarabScratch>,
}

struct ScarabScratch {
    fwd: TraversalScratch,
    bwd: TraversalScratch,
    entries: Vec<VertexId>,
    exits: Vec<VertexId>,
}

impl<I: ReachIndex> Scarab<I> {
    /// Extracts the ε-backbone of `dag` and builds the inner index on
    /// it via `build_inner`. `name` is the reported column name
    /// (e.g. `"GRAIL*"`).
    pub fn build(
        dag: &Dag,
        eps: u32,
        name: &'static str,
        build_inner: impl FnOnce(&Dag) -> Result<I, GraphError>,
    ) -> Result<Self, GraphError> {
        let backbone = Backbone::extract(dag, eps);
        let inner = build_inner(&backbone.dag)?;
        let n = dag.num_vertices();
        Ok(Scarab {
            g: dag.graph().clone(),
            eps,
            backbone,
            inner,
            name,
            scratch: RefCell::new(ScarabScratch {
                fwd: TraversalScratch::new(n),
                bwd: TraversalScratch::new(n),
                entries: Vec::new(),
                exits: Vec::new(),
            }),
        })
    }

    /// Number of backbone vertices the inner index was built on.
    pub fn backbone_size(&self) -> usize {
        self.backbone.num_vertices()
    }

    /// The inner index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// ε-BFS from `start`: returns `true` if `target` is found locally;
    /// otherwise fills `acc` with first-reached backbone vertices.
    fn local_sweep(
        &self,
        start: VertexId,
        target: VertexId,
        forward: bool,
        scratch: &mut TraversalScratch,
        acc: &mut Vec<VertexId>,
    ) -> bool {
        scratch.reset();
        acc.clear();
        scratch.visited.insert(start);
        scratch.queue.push_back(start);
        if self.backbone.contains(start) {
            // A backbone endpoint is its own entry/exit.
            acc.push(start);
            return false;
        }
        let mut depth = 0;
        while depth < self.eps && !scratch.queue.is_empty() {
            depth += 1;
            for _ in 0..scratch.queue.len() {
                let x = scratch.queue.pop_front().expect("nonempty frontier");
                let neigh = if forward {
                    self.g.out_neighbors(x)
                } else {
                    self.g.in_neighbors(x)
                };
                for &w in neigh {
                    if w == target {
                        return true;
                    }
                    if !scratch.visited.insert(w) {
                        continue;
                    }
                    if self.backbone.contains(w) {
                        acc.push(w); // entry/exit: do not expand past it
                    } else {
                        scratch.queue.push_back(w);
                    }
                }
            }
        }
        false
    }
}

impl<I: ReachIndex> ReachIndex for Scarab<I> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let mut s = self.scratch.borrow_mut();
        let ScarabScratch {
            fwd,
            bwd,
            entries,
            exits,
        } = &mut *s;
        if self.local_sweep(u, v, true, fwd, entries) {
            return true;
        }
        if entries.is_empty() {
            return false;
        }
        if self.local_sweep(v, u, false, bwd, exits) {
            return true;
        }
        if exits.is_empty() {
            return false;
        }
        for &a in entries.iter() {
            let ca = self.backbone.parent_to_backbone[a as usize];
            for &b in exits.iter() {
                let cb = self.backbone.parent_to_backbone[b as usize];
                if self.inner.query(ca, cb) {
                    return true;
                }
            }
        }
        false
    }

    fn size_in_integers(&self) -> u64 {
        self.inner.size_in_integers()
            + self.backbone.to_parent.len() as u64
            + self.backbone.parent_to_backbone.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grail::Grail;
    use crate::pathtree::PathTree;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag, idx: &dyn ReachIndex) {
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "{} mismatch at ({u},{v})",
                    idx.name()
                );
            }
        }
    }

    #[test]
    fn scarab_grail_correct() {
        for seed in 0..5 {
            let dag = gen::random_dag(60, 170, seed);
            let idx = Scarab::build(&dag, 2, "GRAIL*", |bb| Ok(Grail::build(bb, 5, seed))).unwrap();
            assert_matches_bfs(&dag, &idx);
        }
    }

    #[test]
    fn scarab_pathtree_correct() {
        for seed in 0..5 {
            let dag = gen::power_law_dag(60, 170, seed);
            let idx = Scarab::build(&dag, 2, "PT*", |bb| PathTree::build(bb, u64::MAX)).unwrap();
            assert_matches_bfs(&dag, &idx);
        }
    }

    #[test]
    fn scarab_eps1_and_eps3_correct() {
        let dag = gen::random_dag(50, 140, 7);
        for eps in [1, 3] {
            let idx = Scarab::build(&dag, eps, "GRAIL*", |bb| Ok(Grail::build(bb, 3, 1))).unwrap();
            assert_matches_bfs(&dag, &idx);
        }
    }

    #[test]
    fn backbone_is_smaller_than_graph() {
        let dag = gen::random_dag(400, 1200, 3);
        let idx = Scarab::build(&dag, 2, "GRAIL*", |bb| Ok(Grail::build(bb, 5, 3))).unwrap();
        assert!(
            idx.backbone_size() < 400,
            "backbone ({}) should shrink the graph",
            idx.backbone_size()
        );
    }

    #[test]
    fn inner_build_failure_propagates() {
        let dag = gen::random_dag(300, 900, 4);
        let res: Result<Scarab<PathTree>, _> =
            Scarab::build(&dag, 2, "PT*", |bb| PathTree::build(bb, 8));
        assert!(res.is_err(), "inner budget failure must propagate");
    }

    #[test]
    fn tree_like_graphs() {
        for seed in 0..3 {
            let dag = gen::tree_plus_dag(70, 20, seed);
            let idx = Scarab::build(&dag, 2, "GRAIL*", |bb| Ok(Grail::build(bb, 5, seed))).unwrap();
            assert_matches_bfs(&dag, &idx);
        }
    }
}
