//! Pruned Landmark Labeling (Akiba, Iwata & Yoshida, SIGMOD 2013) —
//! the paper's PL baseline.
//!
//! PL is a *distance* labeling: every label entry carries
//! `(hop rank, distance)`, BFS pruning keeps an entry only when the
//! current labels cannot already certify a distance at least as small,
//! and a query evaluates `min over common hops of d₁ + d₂`. §2.4 calls
//! DL "similar in spirit" but notes the differences reproduced here:
//! PL's prune condition is distance-based (strictly weaker than DL's
//! reachability-based prune, so PL labels are supersets), and queries
//! pay "additional distance comparison cost" — the full merge runs to
//! the end instead of stopping at the first common hop, which is why
//! the paper measures PL near GRAIL rather than near DL.

use std::collections::VecDeque;

use hoplite_core::{OrderKind, ReachIndex};
use hoplite_graph::traversal::VisitedSet;
use hoplite_graph::{Dag, VertexId};

/// One label entry: hop rank and BFS distance to/from it.
type Entry = (u32, u32);

/// Pruned landmark distance labels answering reachability.
pub struct PrunedLandmark {
    out: Vec<Vec<Entry>>,
    in_: Vec<Vec<Entry>>,
}

impl PrunedLandmark {
    /// Builds PL with the same degree-product rank order as DL.
    pub fn build(dag: &Dag) -> Self {
        let order = OrderKind::DegProduct.compute(dag);
        let n = dag.num_vertices();
        let g = dag.graph();
        let mut out: Vec<Vec<Entry>> = vec![Vec::new(); n];
        let mut in_: Vec<Vec<Entry>> = vec![Vec::new(); n];
        let mut visited = VisitedSet::new(n);
        let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();

        for (rank, &vi) in order.iter().enumerate() {
            let r = rank as u32;
            // Reverse BFS: vi enters L_out of its ancestors.
            visited.clear();
            queue.clear();
            visited.insert(vi);
            queue.push_back((vi, 0));
            while let Some((u, d)) = queue.pop_front() {
                // Prune iff existing labels already certify
                // dist(u, vi) ≤ d.
                if distance_between(&out[u as usize], &in_[vi as usize]).is_some_and(|cur| cur <= d)
                {
                    continue;
                }
                out[u as usize].push((r, d));
                for &w in g.in_neighbors(u) {
                    if visited.insert(w) {
                        queue.push_back((w, d + 1));
                    }
                }
            }
            // Forward BFS: vi enters L_in of its descendants.
            visited.clear();
            queue.clear();
            visited.insert(vi);
            queue.push_back((vi, 0));
            while let Some((w, d)) = queue.pop_front() {
                if distance_between(&out[vi as usize], &in_[w as usize]).is_some_and(|cur| cur <= d)
                {
                    continue;
                }
                in_[w as usize].push((r, d));
                for &x in g.out_neighbors(w) {
                    if visited.insert(x) {
                        queue.push_back((x, d + 1));
                    }
                }
            }
        }

        PrunedLandmark { out, in_ }
    }

    /// Exact shortest-path distance from `u` to `v` (in edges), or
    /// `None` if unreachable. `Some(0)` when `u == v`.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        distance_between(&self.out[u as usize], &self.in_[v as usize])
    }

    /// **k-reach** (Cheng et al., VLDB 2012; listed as future work in
    /// §7 of the reachability-oracle paper): can `u` reach `v` within
    /// `k` edges? Answered exactly from the distance labels — because
    /// hop distances are shortest-path distances, `min d₁+d₂` over
    /// common hops is the true distance.
    pub fn within_k(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.distance(u, v).is_some_and(|d| d <= k)
    }
}

/// `min over common hops of d₁ + d₂`; a full merge without early exit
/// (distances must be compared even after the first common hop).
fn distance_between(a: &[Entry], b: &[Entry]) -> Option<u32> {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best: Option<u32> = None;
    while i < a.len() && j < b.len() {
        let ((ra, da), (rb, db)) = (a[i], b[j]);
        match ra.cmp(&rb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = da + db;
                best = Some(best.map_or(d, |x| x.min(d)));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

impl ReachIndex for PrunedLandmark {
    fn name(&self) -> &'static str {
        "PL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.distance(u, v).is_some()
    }

    fn size_in_integers(&self) -> u64 {
        let entries: usize = self
            .out
            .iter()
            .chain(self.in_.iter())
            .map(|l| l.len() * 2)
            .sum();
        entries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn bfs_distance(dag: &Dag, u: VertexId, v: VertexId) -> Option<u32> {
        use hoplite_graph::traversal::{bounded_neighborhood, Direction, TraversalScratch};
        let mut scratch = TraversalScratch::new(dag.num_vertices());
        let mut out = Vec::new();
        bounded_neighborhood(
            dag.graph(),
            u,
            dag.num_vertices() as u32,
            Direction::Forward,
            &mut scratch,
            &mut out,
        );
        out.iter().find(|&&(x, _)| x == v).map(|&(_, d)| d)
    }

    #[test]
    fn reachability_matches_bfs() {
        for seed in 0..6 {
            let dag = gen::random_dag(45, 130, seed);
            let idx = PrunedLandmark::build(&dag);
            for u in 0..45u32 {
                for v in 0..45u32 {
                    assert_eq!(
                        idx.query(u, v),
                        traversal::reaches(dag.graph(), u, v),
                        "mismatch at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn distances_are_exact() {
        for seed in 0..4 {
            let dag = gen::random_dag(30, 80, seed);
            let idx = PrunedLandmark::build(&dag);
            for u in 0..30u32 {
                for v in 0..30u32 {
                    assert_eq!(
                        idx.distance(u, v),
                        bfs_distance(&dag, u, v),
                        "distance mismatch at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_labels_not_smaller_than_dl() {
        // PL's weaker pruning must never give *fewer* entries than DL.
        use hoplite_core::{DistributionLabeling, DlConfig};
        let dag = gen::random_dag(60, 200, 9);
        let pl = PrunedLandmark::build(&dag);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let pl_entries: usize = pl.out.iter().chain(pl.in_.iter()).map(Vec::len).sum();
        assert!(pl_entries as u64 >= dl.labeling().total_entries());
    }

    #[test]
    fn tree_distances() {
        let dag = gen::tree_plus_dag(50, 0, 3);
        let idx = PrunedLandmark::build(&dag);
        for u in 0..50u32 {
            assert_eq!(idx.distance(u, u), Some(0));
        }
    }

    #[test]
    fn within_k_matches_bounded_bfs() {
        use hoplite_graph::traversal::{bounded_neighborhood, Direction, TraversalScratch};
        for seed in 0..3 {
            let dag = gen::random_dag(40, 110, seed);
            let idx = PrunedLandmark::build(&dag);
            let mut scratch = TraversalScratch::new(40);
            let mut nbhd = Vec::new();
            for u in 0..40u32 {
                for k in [0u32, 1, 2, 4] {
                    nbhd.clear();
                    bounded_neighborhood(
                        dag.graph(),
                        u,
                        k,
                        Direction::Forward,
                        &mut scratch,
                        &mut nbhd,
                    );
                    for v in 0..40u32 {
                        let truth = nbhd.iter().any(|&(x, _)| x == v);
                        assert_eq!(
                            idx.within_k(u, v, k),
                            truth,
                            "within_k({u},{v},{k}) seed {seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn within_k_monotone_in_k() {
        let dag = gen::power_law_dag(50, 150, 5);
        let idx = PrunedLandmark::build(&dag);
        for u in 0..50u32 {
            for v in 0..50u32 {
                for k in 0..6u32 {
                    if idx.within_k(u, v, k) {
                        assert!(idx.within_k(u, v, k + 1), "monotonicity broke");
                    }
                }
            }
        }
    }
}
