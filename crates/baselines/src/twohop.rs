//! Set-cover 2-hop labeling (Cohen, Halperin, Kaplan & Zwick, 2003)
//! with the HOPI-style greedy speedups — the paper's 2HOP baseline and
//! the construction-cost villain of its introduction.
//!
//! The ground set is the full transitive closure: every reachable pair
//! `(u, w)` must be covered by some hop `v` with `u → v → w`. The
//! greedy loop repeatedly selects the hop with the best
//! `newly-covered-pairs / label-cost` ratio. Following the fast
//! heuristics of Schenkel et al. (HOPI) and 3-hop, a selected hop is
//! applied to its *full* ancestor/descendant sets rather than a densest
//! subgraph (the densest-subgraph refinement changes constants, not the
//! behaviour the paper measures), and candidate ratios are re-evaluated
//! lazily.
//!
//! Everything the paper criticizes is faithfully present: the closure
//! (plus a covered-pair matrix) is materialized — Θ(n²) bits — and
//! construction is orders of magnitude slower than DL. Builds are
//! bounded by a byte budget *and* a wall-clock budget so the harness
//! can report the paper's "—" entries instead of hanging.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use hoplite_core::{Labeling, LabelingBuilder, ReachIndex};
use hoplite_graph::bitset::FixedBitset;
use hoplite_graph::{Dag, GraphError, TransitiveClosure, VertexId};

/// Resource limits for [`TwoHop::build`].
#[derive(Clone, Debug)]
pub struct TwoHopConfig {
    /// Cap on the Θ(n²)-bit working set (closure + covered matrix).
    pub budget_bytes: u64,
    /// Cap on construction wall-clock (the paper used a 24 h limit; the
    /// harness uses seconds).
    pub time_budget: Option<Duration>,
}

impl Default for TwoHopConfig {
    fn default() -> Self {
        TwoHopConfig {
            budget_bytes: u64::MAX,
            time_budget: None,
        }
    }
}

/// Greedy set-cover 2-hop labeling.
pub struct TwoHop {
    labeling: Labeling,
    /// `selection[r]` = vertex chosen as the r-th hop.
    selection: Vec<VertexId>,
}

/// Max-heap priority: benefit/cost ratio ordered through `total_cmp`.
#[derive(PartialEq)]
struct Prio(f64);

impl Eq for Prio {}
impl PartialOrd for Prio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Prio {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl TwoHop {
    /// Runs the greedy set-cover construction.
    pub fn build(dag: &Dag, cfg: &TwoHopConfig) -> Result<Self, GraphError> {
        let n = dag.num_vertices();
        let row_bytes = (n as u64) * (n as u64).div_ceil(64) * 8;
        let required = row_bytes * 3; // forward TC + reverse TC + covered
        if required > cfg.budget_bytes {
            return Err(GraphError::BudgetExceeded {
                what: "2-hop set-cover working set",
                required_bytes: required,
                budget_bytes: cfg.budget_bytes,
            });
        }
        let start = Instant::now();

        // Materialize closures including self-bits: Cov(v) in
        // Definition 3 spans TC⁻¹(v) × TC(v) with v in both sets.
        let fwd = closure_with_self(dag);
        let rev = closure_with_self(&Dag::new(dag.graph().reversed()).expect("reverse of DAG"));

        let mut covered: Vec<FixedBitset> = (0..n).map(|_| FixedBitset::new(n)).collect();
        let mut uncovered: u64 = fwd.iter().map(|r| r.count_ones() as u64).sum::<u64>();

        let mut b = LabelingBuilder::new(n);
        let mut selection: Vec<VertexId> = Vec::new();
        let mut selected = vec![false; n];

        // Lazy-greedy heap. Initial benefits are exact (nothing covered).
        let mut heap: BinaryHeap<(Prio, VertexId)> = BinaryHeap::with_capacity(n);
        let cost = |w: VertexId| -> f64 {
            (rev[w as usize].count_ones() + fwd[w as usize].count_ones()) as f64
        };
        for w in 0..n as VertexId {
            let benefit = rev[w as usize].count_ones() as f64 * fwd[w as usize].count_ones() as f64;
            if benefit > 0.0 {
                heap.push((Prio(benefit / cost(w)), w));
            }
        }

        while uncovered > 0 {
            if let Some(tb) = cfg.time_budget {
                if start.elapsed() > tb {
                    return Err(GraphError::BudgetExceeded {
                        what: "2-hop construction time",
                        required_bytes: start.elapsed().as_millis() as u64,
                        budget_bytes: tb.as_millis() as u64,
                    });
                }
            }
            let (_, w) = heap.pop().expect("uncovered pairs imply an unselected hop");
            if selected[w as usize] {
                continue;
            }
            // Exact benefit of w right now.
            let benefit: u64 = rev[w as usize]
                .ones()
                .map(|u| count_new(&fwd[w as usize], &covered[u]))
                .sum();
            if benefit == 0 {
                continue; // permanently useless: coverage only grows
            }
            let ratio = benefit as f64 / cost(w);
            if let Some((Prio(top), _)) = heap.peek() {
                if ratio < *top {
                    heap.push((Prio(ratio), w));
                    continue; // stale entry: re-queue with fresh ratio
                }
            }
            // Commit hop w. Following the HOPI-style speedup the paper
            // cites ([29, 20]: apply the hop to the *full* ancestor and
            // descendant sets instead of re-solving densest subgraph),
            // w enters every L_out(u), u ∈ TC⁻¹(w), and every L_in(x),
            // x ∈ TC(w). This is what makes classic 2-hop labels
            // redundant — the redundancy §5.3 conjectures and that
            // Figure 3 shows DL beating.
            let r = selection.len() as u32;
            selection.push(w);
            selected[w as usize] = true;
            for u in rev[w as usize].ones() {
                b.out[u].push(r);
                let new_u = count_new(&fwd[w as usize], &covered[u]);
                if new_u > 0 {
                    covered[u].union_with(&fwd[w as usize]);
                    uncovered -= new_u;
                }
            }
            for x in fwd[w as usize].ones() {
                b.in_[x].push(r);
            }
        }

        Ok(TwoHop {
            labeling: b.finish(),
            selection,
        })
    }

    /// The underlying labeling (hop ids are selection ranks).
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Hops in selection order.
    pub fn selection(&self) -> &[VertexId] {
        &self.selection
    }
}

/// Closure rows with the diagonal set: `row(v) = TC(v) ∪ {v}`.
fn closure_with_self(dag: &Dag) -> Vec<FixedBitset> {
    let n = dag.num_vertices();
    let tc = TransitiveClosure::build(dag);
    (0..n as VertexId)
        .map(|v| {
            let mut row = tc.row(v).clone();
            row.set(v as usize);
            row
        })
        .collect()
}

/// `popcount(row & !covered)`.
fn count_new(row: &FixedBitset, covered: &FixedBitset) -> u64 {
    row.as_words()
        .iter()
        .zip(covered.as_words())
        .map(|(r, c)| (r & !c).count_ones() as u64)
        .sum()
}

impl ReachIndex for TwoHop {
    fn name(&self) -> &'static str {
        "2HOP"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.labeling.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        self.labeling.size_in_integers() + self.selection.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag) {
        let idx = TwoHop::build(dag, &TwoHopConfig::default()).unwrap();
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..5 {
            assert_matches_bfs(&gen::random_dag(40, 110, seed));
        }
    }

    #[test]
    fn correct_on_other_families() {
        assert_matches_bfs(&gen::tree_plus_dag(50, 15, 1));
        assert_matches_bfs(&gen::power_law_dag(50, 140, 2));
        assert_matches_bfs(&gen::grid_dag(5, 6));
    }

    #[test]
    fn covers_self_pairs_through_labels() {
        // Cov(V) includes (v, v): the labels alone must witness it.
        let dag = gen::random_dag(30, 70, 7);
        let idx = TwoHop::build(&dag, &TwoHopConfig::default()).unwrap();
        for v in 0..30u32 {
            assert!(
                hoplite_core::sorted_intersect(
                    idx.labeling().out_label(v),
                    idx.labeling().in_label(v)
                ),
                "self pair ({v},{v}) not label-covered"
            );
        }
    }

    #[test]
    fn memory_budget_enforced() {
        let dag = gen::random_dag(5000, 20000, 1);
        let cfg = TwoHopConfig {
            budget_bytes: 1024,
            time_budget: None,
        };
        assert!(matches!(
            TwoHop::build(&dag, &cfg),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn time_budget_enforced() {
        let dag = gen::random_dag(600, 3000, 2);
        let cfg = TwoHopConfig {
            budget_bytes: u64::MAX,
            time_budget: Some(Duration::from_nanos(1)),
        };
        assert!(matches!(
            TwoHop::build(&dag, &cfg),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn greedy_picks_the_obvious_hub_first() {
        // Star through a middle vertex: 0..4 -> 5 -> 6..10. Hop 5 covers
        // the whole closure and must be selected first.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            edges.push((u, 5));
        }
        for v in 6..11u32 {
            edges.push((5, v));
        }
        let dag = Dag::from_edges(11, &edges).unwrap();
        let idx = TwoHop::build(&dag, &TwoHopConfig::default()).unwrap();
        assert_eq!(idx.selection()[0], 5);
    }

    #[test]
    fn empty_graph() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let idx = TwoHop::build(&dag, &TwoHopConfig::default()).unwrap();
        assert_eq!(idx.labeling().total_entries(), 0);
    }

    /// Figure 3's surprise, reproduced: DL's non-redundant labels are
    /// smaller than the set-cover labels with full-set application.
    #[test]
    fn dl_labels_beat_twohop_labels() {
        use hoplite_core::{DistributionLabeling, DlConfig};
        for seed in 0..3 {
            let dag = gen::power_law_dag(80, 240, seed);
            let twohop = TwoHop::build(&dag, &TwoHopConfig::default()).unwrap();
            let dl = DistributionLabeling::build(&dag, &DlConfig::default());
            assert!(
                dl.labeling().total_entries() <= twohop.labeling().total_entries(),
                "seed {seed}: DL {} vs 2HOP {}",
                dl.labeling().total_entries(),
                twohop.labeling().total_entries()
            );
        }
    }
}
