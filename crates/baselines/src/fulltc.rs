//! Fully materialized transitive closure — the O(n²) reference point.

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, GraphError, TransitiveClosure, VertexId};

/// Uncompressed bit-matrix transitive closure.
///
/// Constant-time queries, quadratic memory: the upper bound every
/// compression approach in the paper is measured against.
pub struct FullTc {
    tc: TransitiveClosure,
}

impl FullTc {
    /// Materializes the closure, failing if it would exceed
    /// `budget_bytes` (emulating the paper's out-of-memory "—" entries).
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        Ok(FullTc {
            tc: TransitiveClosure::build_with_budget(dag, budget_bytes)?,
        })
    }

    /// The underlying closure.
    pub fn closure(&self) -> &TransitiveClosure {
        &self.tc
    }
}

impl ReachIndex for FullTc {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.tc.reaches(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        // Bit-matrix words counted as two 32-bit integers each.
        (self.tc.memory_bytes() as u64) / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    #[test]
    fn matches_bfs() {
        let dag = gen::random_dag(30, 90, 5);
        let tc = FullTc::build(&dag, u64::MAX).unwrap();
        for u in 0..30u32 {
            for v in 0..30u32 {
                assert_eq!(tc.query(u, v), traversal::reaches(dag.graph(), u, v));
            }
        }
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(5000, 10000, 1);
        assert!(FullTc::build(&dag, 1000).is_err());
    }
}
