//! Index-free online search baselines.
//!
//! The "other extreme" of §2.1: no precomputation, no index memory,
//! but query time proportional to the searched subgraph. Three
//! variants: forward BFS, forward DFS, and bidirectional BFS (the
//! strongest of the three and the default "no index" comparator).

use std::cell::RefCell;

use hoplite_core::ReachIndex;
use hoplite_graph::traversal::{self, TraversalScratch, VisitedSet};
use hoplite_graph::{Dag, DiGraph, VertexId};

/// Forward-BFS online search.
pub struct BfsOnline {
    g: DiGraph,
    scratch: RefCell<TraversalScratch>,
}

impl BfsOnline {
    /// Captures the graph; no index is built.
    pub fn build(dag: &Dag) -> Self {
        BfsOnline {
            scratch: RefCell::new(TraversalScratch::new(dag.num_vertices())),
            g: dag.graph().clone(),
        }
    }
}

impl ReachIndex for BfsOnline {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        traversal::reaches_with(&self.g, u, v, &mut self.scratch.borrow_mut())
    }

    fn size_in_integers(&self) -> u64 {
        0 // online search stores nothing beyond the graph itself
    }
}

/// Forward-DFS online search.
pub struct DfsOnline {
    g: DiGraph,
    scratch: RefCell<(VisitedSet, Vec<VertexId>)>,
}

impl DfsOnline {
    /// Captures the graph; no index is built.
    pub fn build(dag: &Dag) -> Self {
        DfsOnline {
            scratch: RefCell::new((VisitedSet::new(dag.num_vertices()), Vec::new())),
            g: dag.graph().clone(),
        }
    }
}

impl ReachIndex for DfsOnline {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let mut s = self.scratch.borrow_mut();
        let (visited, stack) = &mut *s;
        visited.clear();
        stack.clear();
        visited.insert(u);
        stack.push(u);
        while let Some(x) = stack.pop() {
            for &w in self.g.out_neighbors(x) {
                if w == v {
                    return true;
                }
                if visited.insert(w) {
                    stack.push(w);
                }
            }
        }
        false
    }

    fn size_in_integers(&self) -> u64 {
        0
    }
}

/// Bidirectional-BFS online search.
pub struct BidirOnline {
    g: DiGraph,
    scratch: RefCell<(TraversalScratch, TraversalScratch)>,
}

impl BidirOnline {
    /// Captures the graph; no index is built.
    pub fn build(dag: &Dag) -> Self {
        let n = dag.num_vertices();
        BidirOnline {
            scratch: RefCell::new((TraversalScratch::new(n), TraversalScratch::new(n))),
            g: dag.graph().clone(),
        }
    }
}

impl ReachIndex for BidirOnline {
    fn name(&self) -> &'static str {
        "BiBFS"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        let mut s = self.scratch.borrow_mut();
        let (f, b) = &mut *s;
        traversal::bidirectional_reaches(&self.g, u, v, f, b)
    }

    fn size_in_integers(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::gen;

    #[test]
    fn all_variants_match_ground_truth() {
        for seed in 0..5 {
            let dag = gen::random_dag(40, 110, seed);
            let bfs = BfsOnline::build(&dag);
            let dfs = DfsOnline::build(&dag);
            let bidir = BidirOnline::build(&dag);
            for u in 0..40u32 {
                for v in 0..40u32 {
                    let truth = traversal::reaches(dag.graph(), u, v);
                    assert_eq!(bfs.query(u, v), truth, "BFS ({u},{v})");
                    assert_eq!(dfs.query(u, v), truth, "DFS ({u},{v})");
                    assert_eq!(bidir.query(u, v), truth, "BiBFS ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn zero_index_size() {
        let dag = gen::random_dag(10, 20, 0);
        assert_eq!(BfsOnline::build(&dag).size_in_integers(), 0);
        assert_eq!(DfsOnline::build(&dag).size_in_integers(), 0);
        assert_eq!(BidirOnline::build(&dag).size_in_integers(), 0);
    }
}
