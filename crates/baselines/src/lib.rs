//! # hoplite-baselines
//!
//! From-scratch implementations of every reachability index the
//! VLDB 2013 reachability-oracle paper evaluates against (§6):
//!
//! | module | paper column | approach |
//! |---|---|---|
//! | [`online`] | (DFS/BFS) | index-free online search |
//! | [`chain`] | (§2.1 [18,7]) | Jagadish chain-cover compressed TC |
//! | [`dual`] | (§2.1 [36]) | dual labeling: tree intervals + link closure |
//! | [`grail`] | GL | GRAIL random-interval labels + pruned DFS |
//! | [`interval`] | INT | Nuutila post-order interval compression |
//! | [`pathtree`] | PT | path-decomposition (chain) compressed TC |
//! | [`pwah`] | PW8 | PWAH-8 word-aligned compressed bit vectors |
//! | [`twohop`] | 2HOP | Cohen et al. greedy set-cover 2-hop |
//! | [`kreach`] | KR | vertex-cover + cover-pair TC (K-Reach, k = ∞) |
//! | [`tflabel`] | TF | TF-label (≈ HL with ε = 1) |
//! | [`pruned_landmark`] | PL | pruned landmark *distance* labeling |
//! | [`scarab`] | GL\*, PT\* | SCARAB backbone wrapper over any index |
//! | [`fulltc`] | — | uncompressed transitive closure (reference) |
//!
//! All types implement [`hoplite_core::ReachIndex`], so the benchmark
//! harness and the tests drive them uniformly.

pub mod chain;
pub mod dual;
pub mod fulltc;
pub mod grail;
pub mod interval;
pub mod kreach;
pub mod online;
pub mod pathtree;
pub mod pruned_landmark;
pub mod pwah;
pub mod scarab;
pub mod tflabel;
pub mod twohop;

pub use chain::ChainIndex;
pub use dual::DualLabeling;
pub use fulltc::FullTc;
pub use grail::Grail;
pub use interval::IntervalIndex;
pub use kreach::{KReach, KReachBounded};
pub use online::{BfsOnline, BidirOnline, DfsOnline};
pub use pathtree::PathTree;
pub use pruned_landmark::PrunedLandmark;
pub use pwah::Pwah8;
pub use scarab::Scarab;
pub use tflabel::TfLabel;
pub use twohop::TwoHop;
