//! PWAH-8 compressed bit-vector transitive closure (van Schaik &
//! de Moor, SIGMOD 2011) — the paper's PW8 baseline and one of only
//! three methods that handled *all* of its large graphs.
//!
//! Each vertex's closure row is a bitmap over vertices **indexed by
//! topological position** (descendants cluster towards higher
//! positions, which is what makes the runs long), compressed with the
//! Partitioned Word-Aligned Hybrid scheme:
//!
//! * the bitmap is a sequence of 7-bit *blocks*;
//! * a 64-bit word holds 8 *partitions* of 7 bits plus an 8-bit header
//!   (bit `56+p` set ⇒ partition `p` is a fill);
//! * a **literal** partition stores one raw block; a **fill** partition
//!   stores bit 6 = fill value and bits 0–5 = run length in blocks
//!   (1–63; longer runs span several fill partitions).
//!
//! Construction is one reverse-topological sweep where each row is the
//! OR of its successors' rows — performed **in the compressed domain**
//! (run-aware segment merge), so no uncompressed row is ever
//! materialized. Queries decode a single word after a binary search on
//! a per-row block-offset directory.

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, GraphError, VertexId};

/// Bits per partition.
const BLOCK_BITS: u32 = 7;
/// Partitions per word.
const PARTS: u32 = 8;
/// All-ones block pattern.
const ONES: u8 = 0x7F;
/// Maximum run length a single fill partition encodes.
const MAX_FILL: u32 = 63;

// --------------------------------------------------------------------
// Compressed vector
// --------------------------------------------------------------------

/// One PWAH-8 compressed bitmap. Bits beyond the encoded blocks are 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PwahVec {
    words: Vec<u64>,
    /// `blocks_before[i]` = number of blocks encoded by words `0..i`;
    /// the query directory.
    blocks_before: Vec<u32>,
    /// Total blocks encoded.
    total_blocks: u32,
}

/// A decoded segment: `count` consecutive blocks, each with bit
/// `pattern`. `count > 1` only for uniform patterns (0x00 / 0x7F).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Seg {
    pattern: u8,
    count: u32,
}

impl PwahVec {
    /// An empty (all-zero) bitmap.
    pub fn empty() -> Self {
        PwahVec::default()
    }

    /// Encodes a bitmap with the given sorted, distinct set positions.
    pub fn from_sorted_positions(positions: &[u32]) -> Self {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut enc = Encoder::new();
        let mut block = 0u32;
        let mut bits = 0u8;
        let mut started = false;
        for &p in positions {
            let b = p / BLOCK_BITS;
            if started && b != block {
                enc.push_seg(Seg {
                    pattern: bits,
                    count: 1,
                });
                if b > block + 1 {
                    enc.push_seg(Seg {
                        pattern: 0,
                        count: b - block - 1,
                    });
                }
                bits = 0;
            } else if !started && b > 0 {
                enc.push_seg(Seg {
                    pattern: 0,
                    count: b,
                });
            }
            started = true;
            block = b;
            bits |= 1 << (p % BLOCK_BITS);
        }
        if started {
            enc.push_seg(Seg {
                pattern: bits,
                count: 1,
            });
        }
        enc.finish()
    }

    /// `true` iff bit `pos` is set.
    pub fn contains(&self, pos: u32) -> bool {
        let target = pos / BLOCK_BITS;
        if target >= self.total_blocks {
            return false;
        }
        // Directory: the word whose block range covers `target`.
        let wi = self.blocks_before.partition_point(|&b| b <= target) - 1;
        let mut at = self.blocks_before[wi];
        let word = self.words[wi];
        for p in 0..PARTS {
            let payload = ((word >> (p * BLOCK_BITS)) & ONES as u64) as u8;
            if word >> (56 + p) & 1 == 1 {
                // fill partition
                let value = payload >> 6 & 1;
                let count = (payload & 0x3F) as u32;
                if target < at + count {
                    return value == 1 && (pos % BLOCK_BITS) < BLOCK_BITS;
                }
                at += count;
            } else {
                if target == at {
                    return payload >> (pos % BLOCK_BITS) & 1 == 1;
                }
                at += 1;
            }
        }
        unreachable!("directory guaranteed the block lies in this word")
    }

    /// Bitwise OR in the compressed domain.
    pub fn or(a: &PwahVec, b: &PwahVec) -> PwahVec {
        let mut enc = Encoder::new();
        let mut ia = SegIter::new(a);
        let mut ib = SegIter::new(b);
        let mut sa = ia.next();
        let mut sb = ib.next();
        loop {
            match (sa, sb) {
                (None, None) => break,
                (Some(x), None) => {
                    enc.push_seg(x);
                    sa = ia.next();
                }
                (None, Some(y)) => {
                    enc.push_seg(y);
                    sb = ib.next();
                }
                (Some(x), Some(y)) => {
                    let n = x.count.min(y.count);
                    enc.push_seg(Seg {
                        pattern: x.pattern | y.pattern,
                        count: n,
                    });
                    sa = consume(x, n).or_else(|| ia.next());
                    sb = consume(y, n).or_else(|| ib.next());
                }
            }
        }
        enc.finish()
    }

    /// Number of set bits (test/statistics helper; decodes the vector).
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut it = SegIter::new(self);
        while let Some(s) = it.next() {
            total += (s.pattern.count_ones() as u64) * s.count as u64;
        }
        total
    }

    /// Heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + self.blocks_before.len() * 4
    }

    /// Stored integers (64-bit words count as two).
    pub fn size_in_integers(&self) -> u64 {
        (self.words.len() * 2 + self.blocks_before.len()) as u64
    }
}

/// Remainder of a partially consumed segment.
fn consume(s: Seg, n: u32) -> Option<Seg> {
    (s.count > n).then_some(Seg {
        pattern: s.pattern,
        count: s.count - n,
    })
}

/// Streaming segment decoder.
struct SegIter<'a> {
    words: &'a [u64],
    wi: usize,
    part: u32,
}

impl<'a> SegIter<'a> {
    fn new(v: &'a PwahVec) -> Self {
        SegIter {
            words: &v.words,
            wi: 0,
            part: 0,
        }
    }

    fn next(&mut self) -> Option<Seg> {
        if self.wi >= self.words.len() {
            return None;
        }
        let word = self.words[self.wi];
        let p = self.part;
        self.part += 1;
        if self.part == PARTS {
            self.part = 0;
            self.wi += 1;
        }
        let payload = ((word >> (p * BLOCK_BITS)) & ONES as u64) as u8;
        if word >> (56 + p) & 1 == 1 {
            let count = (payload & 0x3F) as u32;
            if count == 0 {
                // Padding partition in the final word: skip.
                return self.next();
            }
            let pattern = if payload >> 6 & 1 == 1 { ONES } else { 0 };
            Some(Seg { pattern, count })
        } else {
            Some(Seg {
                pattern: payload,
                count: 1,
            })
        }
    }
}

/// Run-merging PWAH encoder.
struct Encoder {
    words: Vec<u64>,
    blocks_before: Vec<u32>,
    cur: u64,
    cur_parts: u32,
    blocks_done: u32,
    /// Pending uniform run (0x00 or 0x7F) not yet emitted.
    pending: Option<Seg>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            words: Vec::new(),
            blocks_before: Vec::new(),
            cur: 0,
            cur_parts: 0,
            blocks_done: 0,
            pending: None,
        }
    }

    fn push_seg(&mut self, s: Seg) {
        if s.count == 0 {
            return;
        }
        let uniform = s.pattern == 0 || s.pattern == ONES;
        match (&mut self.pending, uniform) {
            (Some(p), true) if p.pattern == s.pattern => {
                p.count += s.count;
            }
            _ => {
                self.flush_pending();
                if uniform {
                    self.pending = Some(s);
                } else {
                    debug_assert_eq!(s.count, 1, "non-uniform segments are single blocks");
                    self.emit_literal(s.pattern);
                }
            }
        }
    }

    fn flush_pending(&mut self) {
        if let Some(s) = self.pending.take() {
            let mut left = s.count;
            while left > 0 {
                let n = left.min(MAX_FILL);
                self.emit_fill(s.pattern == ONES, n);
                left -= n;
            }
        }
    }

    fn emit_literal(&mut self, pattern: u8) {
        self.push_partition(pattern as u64, false, 1);
    }

    fn emit_fill(&mut self, ones: bool, count: u32) {
        let payload = ((ones as u64) << 6) | count as u64;
        self.push_partition(payload, true, count);
    }

    fn push_partition(&mut self, payload: u64, fill: bool, blocks: u32) {
        if self.cur_parts == 0 {
            self.blocks_before.push(self.blocks_done);
        }
        self.cur |= payload << (self.cur_parts * BLOCK_BITS);
        if fill {
            self.cur |= 1u64 << (56 + self.cur_parts);
        }
        self.cur_parts += 1;
        self.blocks_done += blocks;
        if self.cur_parts == PARTS {
            self.words.push(self.cur);
            self.cur = 0;
            self.cur_parts = 0;
        }
    }

    fn finish(mut self) -> PwahVec {
        // Drop a trailing all-zero run entirely: bits beyond the
        // encoding read as zero anyway.
        if matches!(self.pending, Some(Seg { pattern: 0, .. })) {
            self.pending = None;
        }
        self.flush_pending();
        if self.cur_parts > 0 {
            // Remaining partitions are zero-count fills (skipped by the
            // decoder).
            for p in self.cur_parts..PARTS {
                self.cur |= 1u64 << (56 + p);
            }
            self.words.push(self.cur);
        }
        PwahVec {
            words: self.words,
            blocks_before: self.blocks_before,
            total_blocks: self.blocks_done,
        }
    }
}

// --------------------------------------------------------------------
// The reachability index
// --------------------------------------------------------------------

/// PWAH-8 compressed transitive closure index.
pub struct Pwah8 {
    /// Vertex → bit position (its topological rank).
    bit_of: Vec<u32>,
    rows: Vec<PwahVec>,
}

impl Pwah8 {
    /// Builds the index; fails with [`GraphError::BudgetExceeded`] once
    /// the compressed rows outgrow `budget_bytes`.
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        Self::build_limited(dag, budget_bytes, None)
    }

    /// [`Self::build`] with an additional wall-clock cap on the
    /// compressed-OR sweep.
    pub fn build_limited(
        dag: &Dag,
        budget_bytes: u64,
        time_budget: Option<std::time::Duration>,
    ) -> Result<Self, GraphError> {
        let start = std::time::Instant::now();
        let n = dag.num_vertices();
        let g = dag.graph();
        let bit_of: Vec<u32> = (0..n as VertexId).map(|v| dag.topo_pos(v)).collect();
        let mut rows: Vec<PwahVec> = vec![PwahVec::empty(); n];
        let mut total: u64 = 0;
        let mut direct: Vec<u32> = Vec::new();
        for (step, &v) in dag.topo_order().iter().rev().enumerate() {
            if let Some(tb) = time_budget {
                if step % 1024 == 0 && start.elapsed() > tb {
                    return Err(GraphError::BudgetExceeded {
                        what: "PWAH-8 construction time",
                        required_bytes: start.elapsed().as_millis() as u64,
                        budget_bytes: tb.as_millis() as u64,
                    });
                }
            }
            direct.clear();
            direct.extend(g.out_neighbors(v).iter().map(|&w| bit_of[w as usize]));
            direct.sort_unstable();
            let mut row = PwahVec::from_sorted_positions(&direct);
            for &w in g.out_neighbors(v) {
                row = PwahVec::or(&row, &rows[w as usize]);
            }
            total += row.memory_bytes() as u64;
            if total > budget_bytes {
                return Err(GraphError::BudgetExceeded {
                    what: "PWAH-8 index",
                    required_bytes: total,
                    budget_bytes,
                });
            }
            rows[v as usize] = row;
        }
        Ok(Pwah8 { bit_of, rows })
    }

    /// The compressed closure row of `v`.
    pub fn row(&self, v: VertexId) -> &PwahVec {
        &self.rows[v as usize]
    }
}

impl ReachIndex for Pwah8 {
    fn name(&self) -> &'static str {
        "PWAH-8"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        u == v || self.rows[u as usize].contains(self.bit_of[v as usize])
    }

    fn size_in_integers(&self) -> u64 {
        self.bit_of.len() as u64 + self.rows.iter().map(|r| r.size_in_integers()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    #[test]
    fn positions_roundtrip() {
        let pos = vec![0, 1, 6, 7, 13, 100, 101, 699];
        let v = PwahVec::from_sorted_positions(&pos);
        for p in 0..800u32 {
            assert_eq!(v.contains(p), pos.contains(&p), "bit {p}");
        }
        assert_eq!(v.count_ones(), pos.len() as u64);
    }

    #[test]
    fn empty_vector() {
        let v = PwahVec::empty();
        assert!(!v.contains(0));
        assert!(!v.contains(12345));
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.memory_bytes(), 0);
    }

    #[test]
    fn long_runs_compress() {
        // A run of ~70k set bits (10k blocks) needs ~160 fill
        // partitions = ~20 words, not 10k words.
        let pos: Vec<u32> = (7..70_007).collect();
        let v = PwahVec::from_sorted_positions(&pos);
        assert!(v.words.len() < 64, "got {} words", v.words.len());
        assert!(v.contains(7) && v.contains(70_006) && !v.contains(6));
        assert!(!v.contains(70_007));
        assert_eq!(v.count_ones(), 70_000);
    }

    #[test]
    fn or_matches_set_union() {
        let mut rng = gen::Rng::new(42);
        for _ in 0..20 {
            let mut a: Vec<u32> = (0..300).filter(|_| rng.gen_bool(0.15)).collect();
            let mut b: Vec<u32> = (0..300).filter(|_| rng.gen_bool(0.03)).collect();
            a.dedup();
            b.dedup();
            let va = PwahVec::from_sorted_positions(&a);
            let vb = PwahVec::from_sorted_positions(&b);
            let vo = PwahVec::or(&va, &vb);
            for p in 0..310u32 {
                assert_eq!(vo.contains(p), a.contains(&p) || b.contains(&p), "bit {p}");
            }
        }
    }

    #[test]
    fn or_with_empty_is_identity() {
        let a = PwahVec::from_sorted_positions(&[3, 9, 200]);
        let o = PwahVec::or(&a, &PwahVec::empty());
        assert_eq!(o.count_ones(), 3);
        assert!(o.contains(3) && o.contains(9) && o.contains(200));
    }

    #[test]
    fn index_matches_bfs() {
        for seed in 0..5 {
            let dag = gen::random_dag(60, 170, seed);
            let idx = Pwah8::build(&dag, u64::MAX).unwrap();
            for u in 0..60u32 {
                for v in 0..60u32 {
                    assert_eq!(
                        idx.query(u, v),
                        traversal::reaches(dag.graph(), u, v),
                        "mismatch ({u},{v}) seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn index_on_tree_and_grid() {
        for dag in [gen::tree_plus_dag(80, 20, 1), gen::grid_dag(6, 8)] {
            let idx = Pwah8::build(&dag, u64::MAX).unwrap();
            let n = dag.num_vertices() as u32;
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(idx.query(u, v), traversal::reaches(dag.graph(), u, v));
                }
            }
        }
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(2000, 12000, 3);
        assert!(matches!(
            Pwah8::build(&dag, 16),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn dense_row_compresses_well_in_topo_space() {
        // A path graph: vertex 0 reaches everything; its row is one run.
        let n = 10_000;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let idx = Pwah8::build(&dag, u64::MAX).unwrap();
        assert!(
            idx.row(0).memory_bytes() < 256,
            "path-head row should be a handful of fill words, got {} bytes",
            idx.row(0).memory_bytes()
        );
    }
}
