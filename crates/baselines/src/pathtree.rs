//! Path-Tree-family compression (the paper's PT baseline, Jin et al.
//! SIGMOD 2008 / TODS 2011).
//!
//! The DAG is decomposed into vertex-disjoint **paths**; positions
//! reachable from any vertex on a given path always form a *suffix* of
//! that path (if you can reach position `j` you can walk the path edge
//! to `j+1`). The compressed closure of `v` is therefore one
//! `(path, min_position)` pair per path it reaches — the
//! chain-compression idea PT builds on. `u → v` iff `u`'s list has an
//! entry for `path(v)` with `min_position ≤ pos(v)` (binary search).
//!
//! The full Path-Tree adds a tree over the paths to shave entries off
//! these lists; this implementation keeps the flat path decomposition,
//! which preserves PT's evaluation profile — the fastest queries on
//! small graphs and an index that outgrows memory on large ones
//! (`DESIGN.md` §4 records this substitution).

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, GraphError, VertexId, INVALID_VERTEX};

/// Path-decomposition compressed transitive closure.
pub struct PathTree {
    /// Path id and position of each vertex.
    path_of: Vec<u32>,
    pos_of: Vec<u32>,
    /// CSR of `(path, min_pos)` entries per vertex, sorted by path id.
    offsets: Vec<u32>,
    entries: Vec<(u32, u32)>,
    /// Number of paths in the decomposition.
    num_paths: usize,
}

impl PathTree {
    /// Builds the index, failing once the entry lists exceed
    /// `budget_bytes` (the paper's PT fails to build on most large
    /// graphs; this reproduces those "—" cells).
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        Self::build_limited(dag, budget_bytes, None)
    }

    /// [`Self::build`] with an additional wall-clock cap for the
    /// list-merging sweep (quadratic-ish on closure-dense graphs).
    pub fn build_limited(
        dag: &Dag,
        budget_bytes: u64,
        time_budget: Option<std::time::Duration>,
    ) -> Result<Self, GraphError> {
        let start = std::time::Instant::now();
        let n = dag.num_vertices();
        let g = dag.graph();

        // --- Greedy path decomposition along the topological order. --
        let mut path_of = vec![INVALID_VERTEX; n];
        let mut pos_of = vec![0u32; n];
        let mut num_paths = 0usize;
        for &start in dag.topo_order() {
            if path_of[start as usize] != INVALID_VERTEX {
                continue;
            }
            let pid = num_paths as u32;
            num_paths += 1;
            let mut v = start;
            let mut pos = 0u32;
            loop {
                path_of[v as usize] = pid;
                pos_of[v as usize] = pos;
                pos += 1;
                // Extend with the unassigned successor that comes first
                // in topological order (keeps chains long).
                let next = g
                    .out_neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| path_of[w as usize] == INVALID_VERTEX)
                    .min_by_key(|&w| dag.topo_pos(w));
                match next {
                    Some(w) => v = w,
                    None => break,
                }
            }
        }

        // --- Reverse-topological suffix lists. ------------------------
        let mut lists: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut total: u64 = 0;
        let mut buf: Vec<(u32, u32)> = Vec::new();
        for (step, &v) in dag.topo_order().iter().rev().enumerate() {
            if let Some(tb) = time_budget {
                if step % 1024 == 0 && start.elapsed() > tb {
                    return Err(GraphError::BudgetExceeded {
                        what: "path-tree construction time",
                        required_bytes: start.elapsed().as_millis() as u64,
                        budget_bytes: tb.as_millis() as u64,
                    });
                }
            }
            buf.clear();
            buf.push((path_of[v as usize], pos_of[v as usize]));
            for &w in g.out_neighbors(v) {
                buf.extend_from_slice(&lists[w as usize]);
            }
            // Keep the minimum position per path.
            buf.sort_unstable();
            let mut merged: Vec<(u32, u32)> = Vec::with_capacity(buf.len());
            for &(p, pos) in buf.iter() {
                if merged.last().map(|&(lp, _)| lp) != Some(p) {
                    merged.push((p, pos)); // first occurrence = min pos
                }
            }
            total += merged.len() as u64;
            if total * 8 > budget_bytes {
                return Err(GraphError::BudgetExceeded {
                    what: "path-tree index",
                    required_bytes: total * 8,
                    budget_bytes,
                });
            }
            lists[v as usize] = merged;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(total as usize);
        offsets.push(0u32);
        for l in &lists {
            entries.extend_from_slice(l);
            offsets.push(entries.len() as u32);
        }
        Ok(PathTree {
            path_of,
            pos_of,
            offsets,
            entries,
            num_paths,
        })
    }

    /// Number of paths the DAG was decomposed into.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    fn list(&self, v: VertexId) -> &[(u32, u32)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.entries[lo..hi]
    }
}

impl ReachIndex for PathTree {
    fn name(&self) -> &'static str {
        "PT"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        let (p, pos) = (self.path_of[v as usize], self.pos_of[v as usize]);
        let list = self.list(u);
        match list.binary_search_by_key(&p, |&(lp, _)| lp) {
            Ok(i) => list[i].1 <= pos,
            Err(_) => false,
        }
    }

    fn size_in_integers(&self) -> u64 {
        (self.path_of.len() + self.pos_of.len() + self.offsets.len() + 2 * self.entries.len())
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag) {
        let idx = PathTree::build(dag, u64::MAX).unwrap();
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            assert_matches_bfs(&gen::random_dag(50, 150, seed));
        }
    }

    #[test]
    fn correct_on_other_families() {
        assert_matches_bfs(&gen::tree_plus_dag(70, 25, 1));
        assert_matches_bfs(&gen::power_law_dag(70, 200, 2));
        assert_matches_bfs(&gen::layered_dag(70, 5, 160, 3));
        assert_matches_bfs(&gen::grid_dag(5, 8));
    }

    #[test]
    fn single_path_graph_uses_one_path() {
        let n = 50;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let idx = PathTree::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.num_paths(), 1);
        // Every vertex stores exactly one (path, pos) entry.
        assert_eq!(idx.entries.len(), n);
    }

    #[test]
    fn decomposition_covers_every_vertex_once() {
        let dag = gen::random_dag(80, 200, 9);
        let idx = PathTree::build(&dag, u64::MAX).unwrap();
        for v in 0..80u32 {
            assert_ne!(idx.path_of[v as usize], INVALID_VERTEX);
            assert!((idx.path_of[v as usize] as usize) < idx.num_paths());
        }
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(300, 2000, 3);
        assert!(matches!(
            PathTree::build(&dag, 64),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn edgeless_graph_each_vertex_its_own_path() {
        let dag = Dag::from_edges(4, &[]).unwrap();
        let idx = PathTree::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.num_paths(), 4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
    }
}
