//! Chain-cover compression of the transitive closure (Jagadish,
//! TODS 1990) — the paper's §2.1 "chain compression" family
//! (references [18] and [7]).
//!
//! The DAG is decomposed into vertex-disjoint *chains* (paths along
//! edges). For every vertex `u` and every chain `c`, all of `TC(u)`'s
//! members on `c` form a suffix of `c`, so recording only the first
//! reachable position per chain compresses each closure row to at most
//! `k` entries (`k` = number of chains). A query is one binary search:
//! `u → v` iff `u`'s entry for `chain(v)` starts at or before `pos(v)`.
//!
//! Two decompositions are provided:
//!
//! * [`ChainIndex::build`] — greedy topological walk; `k` is within a
//!   small factor of optimal on the sparse graphs the paper evaluates.
//! * [`ChainIndex::build_min_cover`] — minimum path cover via Kuhn's
//!   bipartite augmenting-path matching (`k = n − |matching|`, the
//!   classic König/Dilworth construction); `O(n·m)` construction, for
//!   small graphs where the optimal `k` matters.
//!
//! Like the paper's other TC-compression baselines, construction takes
//! a byte budget and fails with [`GraphError::BudgetExceeded`] on
//! closure-dense graphs — chain rows approach `n·k` there, which is
//! exactly why the paper's Tables 5–7 show this family collapsing on
//! large inputs.

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, GraphError, VertexId, INVALID_VERTEX};

/// Chain-cover compressed transitive closure.
pub struct ChainIndex {
    /// Chain id of each vertex.
    chain_of: Vec<u32>,
    /// Position of each vertex within its chain (0 = chain head).
    pos_of: Vec<u32>,
    /// CSR offsets into `row_chain` / `row_pos`.
    offsets: Vec<u32>,
    /// Per-vertex closure rows: chain ids, ascending.
    row_chain: Vec<u32>,
    /// First reachable position on the corresponding chain.
    row_pos: Vec<u32>,
    /// Number of chains in the decomposition.
    num_chains: usize,
}

impl ChainIndex {
    /// Builds the index over a greedy chain decomposition.
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        let chains = greedy_chains(dag);
        Self::from_chains(dag, chains, budget_bytes)
    }

    /// Builds the index over a *minimum* chain decomposition obtained
    /// from a maximum bipartite matching on the edge set (Kuhn's
    /// algorithm, `O(n·m)`). Minimizing the chain count `k` minimizes
    /// the worst-case row length.
    pub fn build_min_cover(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        let chains = matching_chains(dag);
        Self::from_chains(dag, chains, budget_bytes)
    }

    /// Number of chains `k` in the decomposition in use.
    pub fn num_chains(&self) -> usize {
        self.num_chains
    }

    /// The chain id and in-chain position assigned to `v`.
    pub fn chain_position(&self, v: VertexId) -> (u32, u32) {
        (self.chain_of[v as usize], self.pos_of[v as usize])
    }

    fn row(&self, v: VertexId) -> (&[u32], &[u32]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.row_chain[lo..hi], &self.row_pos[lo..hi])
    }

    /// Shared back half: successor-row DP over any valid decomposition.
    fn from_chains(
        dag: &Dag,
        chains: Vec<Vec<VertexId>>,
        budget_bytes: u64,
    ) -> Result<Self, GraphError> {
        let n = dag.num_vertices();
        let mut chain_of = vec![u32::MAX; n];
        let mut pos_of = vec![u32::MAX; n];
        for (c, chain) in chains.iter().enumerate() {
            for (p, &v) in chain.iter().enumerate() {
                debug_assert_eq!(chain_of[v as usize], u32::MAX, "vertex on two chains");
                chain_of[v as usize] = c as u32;
                pos_of[v as usize] = p as u32;
            }
        }
        debug_assert!(chain_of.iter().all(|&c| c != u32::MAX));

        // Reverse-topological DP: row(v) = min-merge of successor rows
        // plus v's own (chain, pos). Rows are sorted by chain id.
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut total: u64 = 0;
        let mut buf: Vec<(u32, u32)> = Vec::new();
        for &v in dag.topo_order().iter().rev() {
            buf.clear();
            buf.push((chain_of[v as usize], pos_of[v as usize]));
            for &w in dag.out_neighbors(v) {
                buf.extend_from_slice(&rows[w as usize]);
            }
            // Keep the minimum position per chain.
            buf.sort_unstable();
            let mut merged: Vec<(u32, u32)> = Vec::with_capacity(buf.len());
            for &(c, p) in buf.iter() {
                match merged.last() {
                    Some(&(lc, _)) if lc == c => {} // earlier entry has smaller pos
                    _ => merged.push((c, p)),
                }
            }
            total += merged.len() as u64;
            if total * 8 > budget_bytes {
                return Err(GraphError::BudgetExceeded {
                    what: "chain-cover closure rows",
                    required_bytes: total * 8,
                    budget_bytes,
                });
            }
            rows[v as usize] = merged;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut row_chain = Vec::with_capacity(total as usize);
        let mut row_pos = Vec::with_capacity(total as usize);
        offsets.push(0u32);
        for r in &rows {
            for &(c, p) in r {
                row_chain.push(c);
                row_pos.push(p);
            }
            offsets.push(row_chain.len() as u32);
        }
        Ok(ChainIndex {
            chain_of,
            pos_of,
            offsets,
            row_chain,
            row_pos,
            num_chains: chains.len(),
        })
    }
}

/// Greedy decomposition: walk the topological order; each unassigned
/// vertex starts a chain that is extended along the first unassigned
/// out-neighbor until stuck.
fn greedy_chains(dag: &Dag) -> Vec<Vec<VertexId>> {
    let n = dag.num_vertices();
    let mut assigned = vec![false; n];
    let mut chains = Vec::new();
    for &start in dag.topo_order() {
        if assigned[start as usize] {
            continue;
        }
        let mut chain = vec![start];
        assigned[start as usize] = true;
        let mut v = start;
        'extend: loop {
            for &w in dag.out_neighbors(v) {
                if !assigned[w as usize] {
                    assigned[w as usize] = true;
                    chain.push(w);
                    v = w;
                    continue 'extend;
                }
            }
            break;
        }
        chains.push(chain);
    }
    chains
}

/// Minimum path cover: maximum matching between out-endpoints and
/// in-endpoints of edges; matched edges stitch vertices into chains.
fn matching_chains(dag: &Dag) -> Vec<Vec<VertexId>> {
    let n = dag.num_vertices();
    // match_succ[u] = matched successor of u, match_pred[v] = matched
    // predecessor of v.
    let mut match_succ = vec![INVALID_VERTEX; n];
    let mut match_pred = vec![INVALID_VERTEX; n];
    let mut seen = vec![u32::MAX; n];

    fn try_augment(
        dag: &Dag,
        u: VertexId,
        round: u32,
        seen: &mut [u32],
        match_succ: &mut [VertexId],
        match_pred: &mut [VertexId],
    ) -> bool {
        for &v in dag.out_neighbors(u) {
            if seen[v as usize] == round {
                continue;
            }
            seen[v as usize] = round;
            if match_pred[v as usize] == INVALID_VERTEX
                || try_augment(
                    dag,
                    match_pred[v as usize],
                    round,
                    seen,
                    match_succ,
                    match_pred,
                )
            {
                match_pred[v as usize] = u;
                match_succ[u as usize] = v;
                return true;
            }
        }
        false
    }

    for u in 0..n as VertexId {
        try_augment(dag, u, u, &mut seen, &mut match_succ, &mut match_pred);
    }

    // Chains start at vertices with no matched predecessor.
    let mut chains = Vec::new();
    for v in 0..n as VertexId {
        if match_pred[v as usize] != INVALID_VERTEX {
            continue;
        }
        let mut chain = vec![v];
        let mut cur = v;
        while match_succ[cur as usize] != INVALID_VERTEX {
            cur = match_succ[cur as usize];
            chain.push(cur);
        }
        chains.push(chain);
    }
    chains
}

impl ReachIndex for ChainIndex {
    fn name(&self) -> &'static str {
        "CHAIN"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        let (chains, positions) = self.row(u);
        match chains.binary_search(&self.chain_of[v as usize]) {
            Ok(i) => positions[i] <= self.pos_of[v as usize],
            Err(_) => false,
        }
    }

    fn size_in_integers(&self) -> u64 {
        (self.chain_of.len()
            + self.pos_of.len()
            + self.offsets.len()
            + self.row_chain.len()
            + self.row_pos.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(idx: &ChainIndex, dag: &Dag) {
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn greedy_correct_on_random_dags() {
        for seed in 0..6 {
            let dag = gen::random_dag(50, 150, seed);
            let idx = ChainIndex::build(&dag, u64::MAX).unwrap();
            assert_matches_bfs(&idx, &dag);
        }
    }

    #[test]
    fn min_cover_correct_on_random_dags() {
        for seed in 0..6 {
            let dag = gen::random_dag(50, 150, seed);
            let idx = ChainIndex::build_min_cover(&dag, u64::MAX).unwrap();
            assert_matches_bfs(&idx, &dag);
        }
    }

    #[test]
    fn correct_on_other_families() {
        for dag in [
            gen::tree_plus_dag(80, 30, 2),
            gen::layered_dag(60, 5, 150, 4),
            gen::power_law_dag(70, 200, 5),
            gen::grid_dag(6, 7),
        ] {
            let idx = ChainIndex::build(&dag, u64::MAX).unwrap();
            assert_matches_bfs(&idx, &dag);
        }
    }

    #[test]
    fn matching_never_uses_more_chains_than_greedy() {
        for seed in 0..8 {
            let dag = gen::random_dag(60, 200, seed);
            let greedy = ChainIndex::build(&dag, u64::MAX).unwrap();
            let optimal = ChainIndex::build_min_cover(&dag, u64::MAX).unwrap();
            assert!(
                optimal.num_chains() <= greedy.num_chains(),
                "seed {seed}: matching {} > greedy {}",
                optimal.num_chains(),
                greedy.num_chains()
            );
        }
    }

    #[test]
    fn path_is_one_chain() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(10, &edges).unwrap();
        for idx in [
            ChainIndex::build(&dag, u64::MAX).unwrap(),
            ChainIndex::build_min_cover(&dag, u64::MAX).unwrap(),
        ] {
            assert_eq!(idx.num_chains(), 1);
            assert_matches_bfs(&idx, &dag);
        }
        // Row of the head is a single (chain 0, pos 0) entry.
        let idx = ChainIndex::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.row(0), (&[0u32][..], &[0u32][..]));
    }

    #[test]
    fn antichain_needs_n_chains() {
        let dag = Dag::from_edges(7, &[]).unwrap();
        let idx = ChainIndex::build_min_cover(&dag, u64::MAX).unwrap();
        assert_eq!(idx.num_chains(), 7);
        assert_matches_bfs(&idx, &dag);
    }

    #[test]
    fn diamond_min_cover_is_two_chains() {
        // 0 -> {1, 2} -> 3: max matching has 2 edges, so k = 4 - 2 = 2.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let idx = ChainIndex::build_min_cover(&dag, u64::MAX).unwrap();
        assert_eq!(idx.num_chains(), 2);
        assert_matches_bfs(&idx, &dag);
    }

    #[test]
    fn chain_positions_are_consistent_edges() {
        // Consecutive chain members must be DAG edges.
        let dag = gen::power_law_dag(50, 140, 9);
        let idx = ChainIndex::build(&dag, u64::MAX).unwrap();
        let mut members: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); idx.num_chains()];
        for v in 0..50u32 {
            let (c, p) = idx.chain_position(v);
            members[c as usize].push((p, v));
        }
        for chain in &mut members {
            chain.sort_unstable();
            for w in chain.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1, "positions are contiguous");
                assert!(
                    dag.graph().has_edge(w[0].1, w[1].1),
                    "chain step {} -> {} is not an edge",
                    w[0].1,
                    w[1].1
                );
            }
        }
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(300, 2000, 3);
        assert!(matches!(
            ChainIndex::build(&dag, 64),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_and_edgeless() {
        let empty = Dag::from_edges(0, &[]).unwrap();
        let idx = ChainIndex::build(&empty, u64::MAX).unwrap();
        assert_eq!(idx.num_chains(), 0);
        let dag = Dag::from_edges(3, &[]).unwrap();
        let idx = ChainIndex::build(&dag, u64::MAX).unwrap();
        for u in 0..3u32 {
            for v in 0..3u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
    }
}
