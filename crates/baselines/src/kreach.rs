//! K-Reach (Cheng et al., VLDB 2012) instantiated for plain
//! reachability (`k = ∞`), the paper's KR baseline.
//!
//! A **vertex cover** `S` (classic 2-approximation: repeatedly take
//! both endpoints of an uncovered edge) is, as the paper notes, exactly
//! a one-side reachability backbone with ε = 1. The pairwise
//! reachability *between cover vertices* is fully materialized as
//! |S|×|S| bit rows — the design decision that makes KR competitive on
//! small graphs and infeasible on large ones ("for very large graphs
//! where the vertex cover is often large, the pair-wise reachability
//! materialization is not feasible", §2.3).
//!
//! Query `u → v`: if `u ∉ S` every out-neighbor of `u` is in `S`
//! (otherwise the edge would be uncovered), and symmetrically for `v`'s
//! in-neighbors, so it suffices to test cover pairs
//! `(a, b) ∈ A × B` with `A = {u}∩S ∪ out(u)`, `B = {v}∩S ∪ in(v)`.

use hoplite_core::ReachIndex;
use hoplite_graph::bitset::FixedBitset;
use hoplite_graph::traversal::TraversalScratch;
use hoplite_graph::{Dag, DiGraph, GraphError, VertexId, INVALID_VERTEX};

/// K-Reach index (k = ∞).
pub struct KReach {
    g: DiGraph,
    /// Vertex → dense cover id, or [`INVALID_VERTEX`].
    cover_id: Vec<VertexId>,
    /// `rows[a]` = cover vertices reachable from cover vertex `a`
    /// (excluding itself), over dense cover ids.
    rows: Vec<FixedBitset>,
}

impl KReach {
    /// Builds the index; fails once the |S|² bit matrix would exceed
    /// `budget_bytes` (the paper's KR fails on all large graphs).
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        Self::build_limited(dag, budget_bytes, None)
    }

    /// [`Self::build`] with an additional wall-clock cap: the per-cover
    /// BFS phase is Θ(|S|·m), which on closure-dense graphs outlasts
    /// any realistic patience long before memory runs out.
    pub fn build_limited(
        dag: &Dag,
        budget_bytes: u64,
        time_budget: Option<std::time::Duration>,
    ) -> Result<Self, GraphError> {
        let start = std::time::Instant::now();
        let n = dag.num_vertices();
        let g = dag.graph();

        // --- 2-approximate vertex cover. ------------------------------
        let mut in_cover = vec![false; n];
        for (u, v) in g.edges() {
            if !in_cover[u as usize] && !in_cover[v as usize] {
                in_cover[u as usize] = true;
                in_cover[v as usize] = true;
            }
        }
        let mut cover_id = vec![INVALID_VERTEX; n];
        let mut cover: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            if in_cover[v as usize] {
                cover_id[v as usize] = cover.len() as VertexId;
                cover.push(v);
            }
        }
        let s = cover.len();
        let required = (s as u64) * (s as u64).div_ceil(64) * 8;
        if required > budget_bytes {
            return Err(GraphError::BudgetExceeded {
                what: "K-Reach cover matrix",
                required_bytes: required,
                budget_bytes,
            });
        }

        // --- Materialize cover-pair reachability by BFS. --------------
        let mut rows: Vec<FixedBitset> = (0..s).map(|_| FixedBitset::new(s)).collect();
        let mut scratch = TraversalScratch::new(n);
        for (a, &va) in cover.iter().enumerate() {
            if let Some(tb) = time_budget {
                if a % 64 == 0 && start.elapsed() > tb {
                    return Err(GraphError::BudgetExceeded {
                        what: "K-Reach construction time",
                        required_bytes: start.elapsed().as_millis() as u64,
                        budget_bytes: tb.as_millis() as u64,
                    });
                }
            }
            scratch.reset();
            scratch.visited.insert(va);
            scratch.queue.push_back(va);
            while let Some(x) = scratch.queue.pop_front() {
                for &w in g.out_neighbors(x) {
                    if scratch.visited.insert(w) {
                        scratch.queue.push_back(w);
                        let cw = cover_id[w as usize];
                        if cw != INVALID_VERTEX {
                            rows[a].set(cw as usize);
                        }
                    }
                }
            }
        }

        Ok(KReach {
            g: g.clone(),
            cover_id,
            rows,
        })
    }

    /// Number of cover vertices.
    pub fn cover_size(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    fn cover_reaches(&self, a: VertexId, b: VertexId) -> bool {
        a == b || self.rows[a as usize].contains(b as usize)
    }
}

impl ReachIndex for KReach {
    fn name(&self) -> &'static str {
        "K-Reach"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        if self.g.has_edge(u, v) {
            return true;
        }
        let cu = self.cover_id[u as usize];
        let cv = self.cover_id[v as usize];
        // Entry candidates: u itself if covered, else its out-neighbors
        // (all of which are necessarily in the cover).
        let a_self = [u];
        let entries: &[VertexId] = if cu != INVALID_VERTEX {
            &a_self
        } else {
            self.g.out_neighbors(u)
        };
        let b_self = [v];
        let exits: &[VertexId] = if cv != INVALID_VERTEX {
            &b_self
        } else {
            self.g.in_neighbors(v)
        };
        for &a in entries {
            let ca = self.cover_id[a as usize];
            debug_assert_ne!(
                ca, INVALID_VERTEX,
                "neighbors of uncovered vertices must be covered"
            );
            for &b in exits {
                let cb = self.cover_id[b as usize];
                if self.cover_reaches(ca, cb) {
                    return true;
                }
            }
        }
        false
    }

    fn size_in_integers(&self) -> u64 {
        let matrix_words: usize = self.rows.iter().map(|r| r.memory_bytes() / 8).sum();
        self.cover_id.len() as u64 + 2 * matrix_words as u64
    }
}

/// The *k-bounded* K-Reach index — the query type Cheng et al. actually
/// introduce ("who is in your small world"), and the second future-work
/// item of the reachability-oracle paper (§7: "apply them on more
/// general reachability computation, such as k-reach problem").
///
/// Same vertex cover as [`KReach`], but the cover-pair matrix stores
/// *shortest-path distances* (`u16`, `MAX` = unreachable) instead of
/// bits. Because every vertex is at distance ≤ 1 from the cover, the
/// minimum of `d(u,a) + dist(a,b) + d(b,v)` over entry/exit cover pairs
/// is the exact shortest-path distance, so `within_k` is exact for
/// every `k`.
pub struct KReachBounded {
    g: DiGraph,
    cover_id: Vec<VertexId>,
    /// Dense |S|×|S| distance matrix over cover ids; `u16::MAX` means
    /// unreachable, diagonal is 0.
    dist: Vec<u16>,
    s: usize,
}

impl KReachBounded {
    /// Builds the distance-matrix variant; the |S|² `u16` matrix must
    /// fit in `budget_bytes`.
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        let n = dag.num_vertices();
        let g = dag.graph();
        let mut in_cover = vec![false; n];
        for (u, v) in g.edges() {
            if !in_cover[u as usize] && !in_cover[v as usize] {
                in_cover[u as usize] = true;
                in_cover[v as usize] = true;
            }
        }
        let mut cover_id = vec![INVALID_VERTEX; n];
        let mut cover: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            if in_cover[v as usize] {
                cover_id[v as usize] = cover.len() as VertexId;
                cover.push(v);
            }
        }
        let s = cover.len();
        let required = (s as u64) * (s as u64) * 2;
        if required > budget_bytes {
            return Err(GraphError::BudgetExceeded {
                what: "k-reach cover distance matrix",
                required_bytes: required,
                budget_bytes,
            });
        }

        let mut dist = vec![u16::MAX; s * s];
        let mut depth = vec![0u32; n];
        let mut scratch = TraversalScratch::new(n);
        for (a, &va) in cover.iter().enumerate() {
            dist[a * s + a] = 0;
            scratch.reset();
            scratch.visited.insert(va);
            scratch.queue.push_back(va);
            depth[va as usize] = 0;
            while let Some(x) = scratch.queue.pop_front() {
                let dx = depth[x as usize];
                for &w in g.out_neighbors(x) {
                    if scratch.visited.insert(w) {
                        depth[w as usize] = dx + 1;
                        scratch.queue.push_back(w);
                        let cw = cover_id[w as usize];
                        if cw != INVALID_VERTEX {
                            // Saturate below the MAX sentinel; paths of
                            // 65534+ edges are beyond any workload here.
                            dist[a * s + cw as usize] = (dx + 1).min(u16::MAX as u32 - 1) as u16;
                        }
                    }
                }
            }
        }

        Ok(KReachBounded {
            g: g.clone(),
            cover_id,
            dist,
            s,
        })
    }

    /// Number of cover vertices.
    pub fn cover_size(&self) -> usize {
        self.s
    }

    #[inline]
    fn cover_dist(&self, a: VertexId, b: VertexId) -> u32 {
        match self.dist[a as usize * self.s + b as usize] {
            u16::MAX => u32::MAX,
            d => d as u32,
        }
    }

    /// Exact shortest-path distance (in edges) from `u` to `v`, or
    /// `None` if `v` is unreachable.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let mut best = if self.g.has_edge(u, v) {
            1u32
        } else {
            u32::MAX
        };
        let (cu, cv) = (self.cover_id[u as usize], self.cover_id[v as usize]);
        let a_self = [u];
        let entries: &[VertexId] = if cu != INVALID_VERTEX {
            &a_self
        } else {
            self.g.out_neighbors(u)
        };
        let b_self = [v];
        let exits: &[VertexId] = if cv != INVALID_VERTEX {
            &b_self
        } else {
            self.g.in_neighbors(v)
        };
        for &a in entries {
            let da = u32::from(a != u);
            let ca = self.cover_id[a as usize];
            for &b in exits {
                let db = u32::from(b != v);
                let cb = self.cover_id[b as usize];
                let mid = self.cover_dist(ca, cb);
                if mid != u32::MAX {
                    best = best.min(da + mid + db);
                }
            }
        }
        (best != u32::MAX).then_some(best)
    }

    /// Does `u` reach `v` within at most `k` edges? Exact.
    pub fn within_k(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.distance(u, v).is_some_and(|d| d <= k)
    }

    /// Index size in 32-bit integers (the `u16` matrix counts as half
    /// an integer per entry).
    pub fn size_in_integers(&self) -> u64 {
        self.cover_id.len() as u64 + (self.s as u64 * self.s as u64).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag) {
        let idx = KReach::build(dag, u64::MAX).unwrap();
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            assert_matches_bfs(&gen::random_dag(50, 140, seed));
        }
    }

    #[test]
    fn correct_on_other_families() {
        assert_matches_bfs(&gen::tree_plus_dag(70, 25, 1));
        assert_matches_bfs(&gen::power_law_dag(70, 200, 2));
        assert_matches_bfs(&gen::grid_dag(5, 8));
    }

    #[test]
    fn cover_is_a_vertex_cover() {
        let dag = gen::random_dag(60, 180, 4);
        let idx = KReach::build(&dag, u64::MAX).unwrap();
        for (u, v) in dag.graph().edges() {
            assert!(
                idx.cover_id[u as usize] != INVALID_VERTEX
                    || idx.cover_id[v as usize] != INVALID_VERTEX,
                "edge ({u},{v}) uncovered"
            );
        }
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(3000, 15000, 1);
        assert!(matches!(
            KReach::build(&dag, 100),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn edgeless_graph_has_empty_cover() {
        let dag = Dag::from_edges(4, &[]).unwrap();
        let idx = KReach::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.cover_size(), 0);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
    }

    /// Ground-truth shortest distance by BFS.
    fn bfs_distance(dag: &Dag, u: u32, v: u32) -> Option<u32> {
        use std::collections::VecDeque;
        if u == v {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; dag.num_vertices()];
        dist[u as usize] = 0;
        let mut q = VecDeque::from([u]);
        while let Some(x) = q.pop_front() {
            for &w in dag.out_neighbors(x) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[x as usize] + 1;
                    if w == v {
                        return Some(dist[w as usize]);
                    }
                    q.push_back(w);
                }
            }
        }
        None
    }

    #[test]
    fn bounded_distances_are_exact() {
        for seed in 0..5 {
            let dag = gen::random_dag(50, 140, seed);
            let idx = KReachBounded::build(&dag, u64::MAX).unwrap();
            for u in 0..50u32 {
                for v in 0..50u32 {
                    assert_eq!(
                        idx.distance(u, v),
                        bfs_distance(&dag, u, v),
                        "distance ({u},{v}) seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn within_k_sweeps_the_whole_range() {
        let dag = gen::layered_dag(60, 6, 150, 3);
        let idx = KReachBounded::build(&dag, u64::MAX).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                let d = bfs_distance(&dag, u, v);
                for k in 0..8u32 {
                    assert_eq!(
                        idx.within_k(u, v, k),
                        d.is_some_and(|d| d <= k),
                        "within_{k}({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_on_path_graph() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(10, &edges).unwrap();
        let idx = KReachBounded::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.distance(0, 9), Some(9));
        assert!(idx.within_k(0, 9, 9));
        assert!(!idx.within_k(0, 9, 8));
        assert_eq!(idx.distance(9, 0), None);
    }

    #[test]
    fn bounded_budget_enforced() {
        let dag = gen::random_dag(3000, 15000, 1);
        assert!(matches!(
            KReachBounded::build(&dag, 100),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn bounded_and_unbounded_agree_on_reachability() {
        for seed in 0..4 {
            let dag = gen::power_law_dag(60, 180, seed);
            let kr = KReach::build(&dag, u64::MAX).unwrap();
            let krb = KReachBounded::build(&dag, u64::MAX).unwrap();
            for u in 0..60u32 {
                for v in 0..60u32 {
                    assert_eq!(
                        kr.query(u, v),
                        krb.within_k(u, v, u32::MAX),
                        "({u},{v}) seed {seed}"
                    );
                }
            }
        }
    }
}
