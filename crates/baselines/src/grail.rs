//! GRAIL (Yildirim, Chaoji & Zaki, VLDB 2010) — the paper's
//! state-of-the-art *online search* baseline (column GL).
//!
//! Each of `k` randomized traversals assigns every vertex an interval
//! `[m_i(v), r_i(v)]`, where `r_i` is the vertex's post-order rank and
//! `m_i(v) = min(r_i(v), min over successors' m_i)` — the smallest
//! post-order rank reachable from `v`. If `u` reaches `v` then
//! `[m_i(v), r_i(v)] ⊆ [m_i(u), r_i(u)]` for *every* traversal, so any
//! non-containment proves non-reachability. Containment can be a false
//! positive, so positive answers fall back to a DFS that prunes every
//! vertex whose intervals do not contain `v`'s.
//!
//! The paper runs GRAIL with five traversals; that is the default here.

use std::cell::RefCell;

use hoplite_core::ReachIndex;
use hoplite_graph::gen::Rng;
use hoplite_graph::traversal::VisitedSet;
use hoplite_graph::{Dag, DiGraph, VertexId};

/// Number of random traversals the paper uses.
pub const DEFAULT_TRAVERSALS: usize = 5;

/// GRAIL index: `k` interval labels per vertex plus the graph for the
/// pruned-DFS fallback.
///
/// ```
/// use hoplite_graph::gen;
/// use hoplite_baselines::Grail;
/// use hoplite_core::ReachIndex;
///
/// let dag = gen::tree_plus_dag(500, 50, 1);
/// let grail = Grail::build(&dag, 5, 42);
/// let root = dag.graph().roots().next().unwrap();
/// let leaf = dag.graph().leaves().next().unwrap();
/// assert!(grail.query(root, leaf));
/// ```
pub struct Grail {
    g: DiGraph,
    k: usize,
    /// `mins[i * n + v]`, `posts[i * n + v]` = interval of `v` in
    /// traversal `i`.
    mins: Vec<u32>,
    posts: Vec<u32>,
    scratch: RefCell<(VisitedSet, Vec<VertexId>)>,
}

impl Grail {
    /// Builds a GRAIL index with `k` random traversals.
    pub fn build(dag: &Dag, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "GRAIL needs at least one traversal");
        let n = dag.num_vertices();
        let g = dag.graph();
        let mut rng = Rng::new(seed);
        let mut mins = vec![0u32; k * n];
        let mut posts = vec![0u32; k * n];

        for i in 0..k {
            let (m, p) = random_postorder_labels(dag, &mut rng);
            mins[i * n..(i + 1) * n].copy_from_slice(&m);
            posts[i * n..(i + 1) * n].copy_from_slice(&p);
        }

        Grail {
            g: g.clone(),
            k,
            mins,
            posts,
            scratch: RefCell::new((VisitedSet::new(n), Vec::new())),
        }
    }

    /// `true` iff every traversal's interval of `v` is contained in
    /// `u`'s — the necessary condition for `u → v`.
    #[inline]
    fn subsumes(&self, u: VertexId, v: VertexId) -> bool {
        let n = self.g.num_vertices();
        for i in 0..self.k {
            let (ui, vi) = (i * n + u as usize, i * n + v as usize);
            if self.mins[ui] > self.mins[vi] || self.posts[vi] > self.posts[ui] {
                return false;
            }
        }
        true
    }
}

/// One randomized traversal: post-order ranks `r` via a DFS with
/// shuffled root and child order, then `m(v)` by reverse-topological
/// minimization over all successors.
fn random_postorder_labels(dag: &Dag, rng: &mut Rng) -> (Vec<u32>, Vec<u32>) {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut post = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut counter = 0u32;

    let mut roots: Vec<VertexId> = g.roots().collect();
    rng.shuffle(&mut roots);
    // Iterative DFS storing each vertex's shuffled child list offset.
    let mut stack: Vec<(VertexId, Vec<VertexId>, usize)> = Vec::new();
    for &root in &roots {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        let mut kids = g.out_neighbors(root).to_vec();
        rng.shuffle(&mut kids);
        stack.push((root, kids, 0));
        while let Some((v, kids, idx)) = stack.last_mut() {
            if let Some(&w) = kids.get(*idx) {
                *idx += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    let mut wk = g.out_neighbors(w).to_vec();
                    rng.shuffle(&mut wk);
                    stack.push((w, wk, 0));
                }
            } else {
                post[*v as usize] = counter;
                counter += 1;
                stack.pop();
            }
        }
    }
    debug_assert_eq!(counter as usize, n, "every DAG vertex sits under a root");

    // m(v) = min post-order rank among v and everything it reaches.
    let mut mins = post.clone();
    for &v in dag.topo_order().iter().rev() {
        for &w in g.out_neighbors(v) {
            mins[v as usize] = mins[v as usize].min(mins[w as usize]);
        }
    }
    (mins, post)
}

impl ReachIndex for Grail {
    fn name(&self) -> &'static str {
        "GRAIL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        if !self.subsumes(u, v) {
            return false;
        }
        // Pruned DFS: only descend into vertices whose intervals still
        // contain v's.
        let mut s = self.scratch.borrow_mut();
        let (visited, stack) = &mut *s;
        visited.clear();
        stack.clear();
        visited.insert(u);
        stack.push(u);
        while let Some(x) = stack.pop() {
            for &w in self.g.out_neighbors(x) {
                if w == v {
                    return true;
                }
                if visited.insert(w) && self.subsumes(w, v) {
                    stack.push(w);
                }
            }
        }
        false
    }

    fn size_in_integers(&self) -> u64 {
        (self.mins.len() + self.posts.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag, idx: &Grail) {
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            let dag = gen::random_dag(50, 140, seed);
            let idx = Grail::build(&dag, DEFAULT_TRAVERSALS, seed);
            assert_matches_bfs(&dag, &idx);
        }
    }

    #[test]
    fn correct_with_single_traversal() {
        let dag = gen::tree_plus_dag(60, 15, 3);
        let idx = Grail::build(&dag, 1, 9);
        assert_matches_bfs(&dag, &idx);
    }

    #[test]
    fn subsumption_is_sound_for_reachable_pairs() {
        // u -> v must imply containment in every traversal.
        let dag = gen::power_law_dag(60, 180, 4);
        let idx = Grail::build(&dag, 3, 7);
        for u in 0..60u32 {
            for v in 0..60u32 {
                if traversal::reaches(dag.graph(), u, v) {
                    assert!(idx.subsumes(u, v), "reachable pair not subsumed");
                }
            }
        }
    }

    #[test]
    fn size_counts_two_ints_per_traversal_per_vertex() {
        let dag = gen::random_dag(30, 60, 1);
        let idx = Grail::build(&dag, 5, 1);
        assert_eq!(idx.size_in_integers(), (2 * 5 * 30) as u64);
    }

    #[test]
    fn handles_edgeless_graph() {
        let dag = Dag::from_edges(4, &[]).unwrap();
        let idx = Grail::build(&dag, 2, 0);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
    }
}
