//! Dual-Labeling (Wang et al., ICDE 2006) — the paper's reference [36],
//! listed in §2.1 as a representative transitive-closure compression.
//!
//! Dual labeling targets *sparse* DAGs where the number of non-tree
//! edges `t` is far smaller than `n`. A spanning forest gives every
//! vertex a pre-order interval, answering tree-only reachability in
//! O(1); the `t` remaining edges ("links") get a `t × t` transitive
//! link closure so that any path — which alternates tree segments and
//! links — is answered from one interval test plus one closure probe.
//!
//! The original achieves O(1) queries with a link-grid structure; here
//! the closure rows are bitsets with a sparse table of range ORs, so a
//! query costs `O(t/64)` after the O(1) tree test — equivalent in the
//! regime `t ≪ n` that dual labeling is designed for (and the regime in
//! which the paper's Table 2 runs it). Construction fails with
//! [`GraphError::BudgetExceeded`] when `t` is too large for the `t²`
//! closure, mirroring how the original degrades on non-tree-like
//! graphs.

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, FixedBitset, GraphError, VertexId};

/// Dual-labeling reachability index: spanning-forest intervals plus a
/// transitive link-closure table.
pub struct DualLabeling {
    /// Pre-order number of each vertex in the spanning forest.
    pre: Vec<u32>,
    /// Largest pre-order number in each vertex's forest subtree.
    max_pre: Vec<u32>,
    /// Link tails' pre-order numbers, ascending (the sort key).
    tail_pre: Vec<u32>,
    /// Link heads, in the same order as `tail_pre`.
    head: Vec<VertexId>,
    /// `sparse[k][i]` = OR of closure rows `i .. i + 2^k`, where row
    /// `i` (level 0) is the reflexive-transitive link closure of link
    /// `i`: bit `j` set iff following link `i` can lead to link `j`.
    /// Gives O(t/64) OR over any contiguous tail range.
    sparse: Vec<Vec<FixedBitset>>,
}

impl DualLabeling {
    /// Builds the index. The `t × t` link closure (plus its range-OR
    /// sparse table) must fit in `budget_bytes`, otherwise
    /// [`GraphError::BudgetExceeded`] is returned — dual labeling is
    /// only applicable while `t` stays small.
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        let n = dag.num_vertices();
        let g = dag.graph();

        // --- Spanning forest by DFS; tree parent = discovering edge. --
        let mut pre = vec![0u32; n];
        let mut max_pre = vec![0u32; n];
        let mut tree_child: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut links: Vec<(VertexId, VertexId)> = Vec::new();
        let mut stack: Vec<(VertexId, usize)> = Vec::new();
        for root in 0..n as VertexId {
            if visited[root as usize] || g.in_degree(root) != 0 {
                continue;
            }
            visited[root as usize] = true;
            stack.push((root, 0));
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                if let Some(&w) = g.out_neighbors(v).get(*idx) {
                    *idx += 1;
                    if visited[w as usize] {
                        links.push((v, w));
                    } else {
                        visited[w as usize] = true;
                        tree_child[v as usize].push(w);
                        stack.push((w, 0));
                    }
                } else {
                    stack.pop();
                }
            }
        }
        debug_assert!(
            visited.iter().all(|&b| b),
            "DAG vertices all sit under a root"
        );

        // Pre-order numbering over the recorded tree children (a second
        // pass so link discovery above could use `visited` freely).
        let mut counter = 0u32;
        let mut order_stack: Vec<VertexId> = Vec::new();
        for root in 0..n as VertexId {
            if dag.in_degree(root) != 0 {
                continue;
            }
            order_stack.push(root);
            while let Some(v) = order_stack.pop() {
                pre[v as usize] = counter;
                counter += 1;
                // Reverse push keeps children in discovery order; any
                // fixed order works for interval containment.
                for &c in tree_child[v as usize].iter().rev() {
                    order_stack.push(c);
                }
            }
        }
        debug_assert_eq!(counter as usize, n);
        // max_pre by processing vertices in decreasing pre-order: each
        // parent folds in its children's maxima.
        let mut by_pre: Vec<VertexId> = (0..n as VertexId).collect();
        by_pre.sort_unstable_by_key(|&v| pre[v as usize]);
        for &v in by_pre.iter().rev() {
            let mut m = pre[v as usize];
            for &c in &tree_child[v as usize] {
                m = m.max(max_pre[c as usize]);
            }
            max_pre[v as usize] = m;
        }

        let t = links.len();
        // Closure rows + sparse table: t²/8 bytes per level, ~log2(t)+1
        // levels. Refuse graphs where that blows the budget.
        let levels = (usize::BITS - t.max(1).leading_zeros()) as u64;
        let need = (t as u64).pow(2) / 8 * (levels + 1);
        if need > budget_bytes {
            return Err(GraphError::BudgetExceeded {
                what: "dual-labeling link closure",
                required_bytes: need,
                budget_bytes,
            });
        }

        // --- Links sorted by tail pre-order (query range key). --------
        links.sort_unstable_by_key(|&(x, _)| pre[x as usize]);
        let tail_pre: Vec<u32> = links.iter().map(|&(x, _)| pre[x as usize]).collect();
        let head: Vec<VertexId> = links.iter().map(|&(_, y)| y).collect();

        // --- Reflexive-transitive link closure. -----------------------
        // Link i directly precedes j iff tail(j) lies in the forest
        // subtree of head(i). Because the graph is acyclic,
        // topo(tail(i)) < topo(head(i)) ≤ topo(tail(j)), so processing
        // links in decreasing topological position of their tail sees
        // every successor's finished row.
        let subtree_range = |v: VertexId| -> (usize, usize) {
            let lo = tail_pre.partition_point(|&p| p < pre[v as usize]);
            let hi = tail_pre.partition_point(|&p| p <= max_pre[v as usize]);
            (lo, hi)
        };
        let mut rows = vec![FixedBitset::new(t); t];
        let mut dp_order: Vec<usize> = (0..t).collect();
        dp_order.sort_unstable_by_key(|&i| dag.topo_pos(links[i].0));
        for &i in dp_order.iter().rev() {
            let mut row = FixedBitset::new(t);
            row.set(i);
            let (lo, hi) = subtree_range(head[i]);
            for (j, row_j) in rows.iter().enumerate().take(hi).skip(lo) {
                debug_assert_ne!(i, j, "a link tail cannot sit under its own head");
                row.union_with(row_j);
            }
            rows[i] = row;
        }

        // --- Sparse table of range ORs over the tail-sorted rows. -----
        let mut sparse: Vec<Vec<FixedBitset>> = Vec::new();
        if t > 0 {
            sparse.push(rows);
            let mut k = 1usize;
            while (1 << k) <= t {
                let half = 1 << (k - 1);
                let prev = &sparse[k - 1];
                let mut level = Vec::with_capacity(t - (1 << k) + 1);
                for i in 0..=(t - (1 << k)) {
                    let mut b = prev[i].clone();
                    b.union_with(&prev[i + half]);
                    level.push(b);
                }
                sparse.push(level);
                k += 1;
            }
        }

        Ok(DualLabeling {
            pre,
            max_pre,
            tail_pre,
            head,
            sparse,
        })
    }

    /// Number of non-tree edges (links) — the `t` that drives both the
    /// index size and dual labeling's applicability.
    pub fn num_links(&self) -> usize {
        self.head.len()
    }

    /// O(1) forest-ancestor test: does `u` reach `v` using tree edges
    /// only?
    #[inline]
    fn tree_reaches(&self, u: VertexId, v: VertexId) -> bool {
        let (pu, pv) = (self.pre[u as usize], self.pre[v as usize]);
        pu <= pv && pv <= self.max_pre[u as usize]
    }

    /// OR of closure rows for links whose tail pre-order lies in
    /// `[lo_idx, hi_idx)`, via two (possibly overlapping) sparse-table
    /// blocks.
    fn range_or(&self, lo: usize, hi: usize) -> FixedBitset {
        debug_assert!(lo < hi && hi <= self.tail_pre.len());
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let mut acc = self.sparse[k][lo].clone();
        acc.union_with(&self.sparse[k][hi - (1 << k)]);
        acc
    }
}

impl ReachIndex for DualLabeling {
    fn name(&self) -> &'static str {
        "DUAL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        if self.tree_reaches(u, v) {
            return true;
        }
        // Links whose tail sits in u's subtree form one contiguous
        // range of the tail-sorted order.
        let lo = self.tail_pre.partition_point(|&p| p < self.pre[u as usize]);
        let hi = self
            .tail_pre
            .partition_point(|&p| p <= self.max_pre[u as usize]);
        if lo >= hi {
            return false;
        }
        let reach = self.range_or(lo, hi);
        reach.ones().any(|j| self.tree_reaches(self.head[j], v))
    }

    fn size_in_integers(&self) -> u64 {
        let closure_words: usize = self
            .sparse
            .iter()
            .flat_map(|level| level.iter())
            .map(|b| b.as_words().len())
            .sum();
        // One u64 word counts as two of the paper's 32-bit integers.
        (self.pre.len() + self.max_pre.len() + self.tail_pre.len() + self.head.len()) as u64
            + 2 * closure_words as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag) {
        let idx = DualLabeling::build(dag, u64::MAX).unwrap();
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            assert_matches_bfs(&gen::random_dag(50, 150, seed));
        }
    }

    #[test]
    fn correct_on_sparse_families() {
        assert_matches_bfs(&gen::tree_plus_dag(80, 0, 1));
        assert_matches_bfs(&gen::tree_plus_dag(80, 30, 2));
        assert_matches_bfs(&gen::forest_dag(60, 80, 3));
        assert_matches_bfs(&gen::grid_dag(6, 7));
        assert_matches_bfs(&gen::layered_dag(60, 5, 150, 4));
        assert_matches_bfs(&gen::power_law_dag(70, 200, 5));
    }

    #[test]
    fn pure_tree_has_no_links() {
        let dag = gen::tree_plus_dag(120, 0, 9);
        let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
        assert_eq!(idx.num_links(), 0, "a tree is covered by its own forest");
    }

    #[test]
    fn link_count_is_edges_minus_forest() {
        // t = m - (n - #roots) regardless of which spanning forest the
        // DFS picks.
        for seed in 0..4 {
            let dag = gen::random_dag(60, 180, seed);
            let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
            let roots = dag.graph().roots().count();
            let expected = dag.num_edges() - (dag.num_vertices() - roots);
            assert_eq!(idx.num_links(), expected, "seed {seed}");
        }
    }

    #[test]
    fn budget_rejects_link_heavy_graphs() {
        let dag = gen::random_dag(200, 2500, 11);
        assert!(matches!(
            DualLabeling::build(&dag, 1024),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn multi_root_forest_separates_trees() {
        // Two disjoint chains: no cross reachability.
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
        assert!(idx.query(0, 2));
        assert!(idx.query(3, 5));
        assert!(!idx.query(0, 5));
        assert!(!idx.query(3, 2));
        assert_eq!(idx.num_links(), 0);
    }

    #[test]
    fn link_chain_crosses_subtrees() {
        // Tree: 0→{1,2}; extra edges 1→2 (link) and a deeper hop:
        // 0→1→3 tree, link 3→4 where 4 hangs under 2.
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (1, 2), (3, 4)]).unwrap();
        let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
        assert!(idx.query(1, 4), "1 →link 2 → 4 or 1 → 3 →link 4");
        assert!(idx.query(3, 4), "single link");
        assert!(!idx.query(2, 3));
        assert!(!idx.query(4, 0));
    }

    #[test]
    fn edgeless_and_empty() {
        let dag = Dag::from_edges(4, &[]).unwrap();
        let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
        let empty = Dag::from_edges(0, &[]).unwrap();
        let idx = DualLabeling::build(&empty, u64::MAX).unwrap();
        assert_eq!(idx.size_in_integers(), 0);
    }

    #[test]
    fn reflexive_on_every_vertex() {
        let dag = gen::power_law_dag(40, 100, 13);
        let idx = DualLabeling::build(&dag, u64::MAX).unwrap();
        for v in 0..40u32 {
            assert!(idx.query(v, v));
        }
    }
}
