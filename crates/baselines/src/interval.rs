//! Nuutila-style interval compression of the transitive closure —
//! the paper's INT baseline, "recently demonstrated to be one of the
//! fastest reachability computation methods" (van Schaik & de Moor).
//!
//! A DFS spanning forest assigns every vertex a post-order number; the
//! tree descendants of `v` occupy the contiguous range
//! `[tlow(v), post(v)]`. The reachable set of `v` is then the union of
//! its own tree interval with its successors' interval sets, computed
//! by one reverse-topological sweep and stored as a sorted, coalesced
//! interval list. `u → v` iff `post(v)` falls inside one of `u`'s
//! intervals (binary search).
//!
//! Like the original, the interval lists can approach Θ(n) per vertex
//! on closure-dense graphs — construction takes a byte budget and
//! reports [`GraphError::BudgetExceeded`] the way the paper's INT
//! column reports "—" on graphs it cannot handle.

use hoplite_core::ReachIndex;
use hoplite_graph::{Dag, GraphError, VertexId};

/// Interval-compressed transitive closure.
pub struct IntervalIndex {
    /// Post-order number of each vertex.
    post: Vec<u32>,
    /// CSR: interval list of vertex `v` is
    /// `intervals[offsets[v]..offsets[v+1]]`, sorted, disjoint, and
    /// non-adjacent (maximally coalesced).
    offsets: Vec<u32>,
    intervals: Vec<(u32, u32)>,
}

impl IntervalIndex {
    /// Builds the index, failing once the interval lists exceed
    /// `budget_bytes`.
    pub fn build(dag: &Dag, budget_bytes: u64) -> Result<Self, GraphError> {
        Self::build_limited(dag, budget_bytes, None)
    }

    /// [`Self::build`] with an additional wall-clock cap for the
    /// interval-merging sweep.
    pub fn build_limited(
        dag: &Dag,
        budget_bytes: u64,
        time_budget: Option<std::time::Duration>,
    ) -> Result<Self, GraphError> {
        let start = std::time::Instant::now();
        let n = dag.num_vertices();
        let g = dag.graph();

        // --- DFS forest post-order + subtree-minimum (tlow). ---------
        let mut post = vec![0u32; n];
        let mut tlow = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut counter = 0u32;
        let mut stack: Vec<(VertexId, usize)> = Vec::new();
        for root in 0..n as VertexId {
            // Every vertex is below some in-degree-0 vertex in a DAG,
            // but scanning all vertices also covers isolated ones and
            // keeps the code independent of root enumeration order.
            if visited[root as usize] || g.in_degree(root) != 0 {
                continue;
            }
            visit_dfs(
                g,
                root,
                &mut visited,
                &mut post,
                &mut tlow,
                &mut counter,
                &mut stack,
            );
        }
        debug_assert_eq!(counter as usize, n);

        // --- Reverse-topological interval union. ---------------------
        let mut lists: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut total: u64 = 0;
        let mut buf: Vec<(u32, u32)> = Vec::new();
        for (step, &v) in dag.topo_order().iter().rev().enumerate() {
            if let Some(tb) = time_budget {
                if step % 1024 == 0 && start.elapsed() > tb {
                    return Err(GraphError::BudgetExceeded {
                        what: "interval-index construction time",
                        required_bytes: start.elapsed().as_millis() as u64,
                        budget_bytes: tb.as_millis() as u64,
                    });
                }
            }
            buf.clear();
            buf.push((tlow[v as usize], post[v as usize]));
            for &w in g.out_neighbors(v) {
                buf.extend_from_slice(&lists[w as usize]);
            }
            let merged = coalesce(&mut buf);
            total += merged.len() as u64;
            if total * 8 > budget_bytes {
                return Err(GraphError::BudgetExceeded {
                    what: "interval index",
                    required_bytes: total * 8,
                    budget_bytes,
                });
            }
            lists[v as usize] = merged;
        }

        // --- Freeze into CSR. -----------------------------------------
        let mut offsets = Vec::with_capacity(n + 1);
        let mut intervals = Vec::with_capacity(total as usize);
        offsets.push(0u32);
        for l in &lists {
            intervals.extend_from_slice(l);
            offsets.push(intervals.len() as u32);
        }
        Ok(IntervalIndex {
            post,
            offsets,
            intervals,
        })
    }

    fn list(&self, v: VertexId) -> &[(u32, u32)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.intervals[lo..hi]
    }
}

/// Iterative DFS assigning post-order numbers and subtree minima.
fn visit_dfs(
    g: &hoplite_graph::DiGraph,
    root: VertexId,
    visited: &mut [bool],
    post: &mut [u32],
    tlow: &mut [u32],
    counter: &mut u32,
    stack: &mut Vec<(VertexId, usize)>,
) {
    visited[root as usize] = true;
    stack.push((root, 0));
    // tlow is the post number of the first finished vertex of the
    // subtree; DFS post-order finishes subtrees contiguously, so it is
    // the counter value when the vertex is first pushed.
    tlow[root as usize] = *counter;
    while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
        let succs = g.out_neighbors(v);
        if let Some(&w) = succs.get(*idx) {
            *idx += 1;
            if !visited[w as usize] {
                visited[w as usize] = true;
                tlow[w as usize] = *counter;
                stack.push((w, 0));
            }
        } else {
            post[v as usize] = *counter;
            *counter += 1;
            stack.pop();
        }
    }
}

/// Sorts intervals by start and coalesces overlapping / adjacent ones.
fn coalesce(buf: &mut [(u32, u32)]) -> Vec<(u32, u32)> {
    buf.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(buf.len());
    for &(lo, hi) in buf.iter() {
        match out.last_mut() {
            Some(&mut (_, ref mut phi)) if lo <= phi.saturating_add(1) => {
                *phi = (*phi).max(hi);
            }
            _ => out.push((lo, hi)),
        }
    }
    out
}

impl ReachIndex for IntervalIndex {
    fn name(&self) -> &'static str {
        "INT"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        let p = self.post[v as usize];
        let list = self.list(u);
        // Last interval starting at or before p.
        match list.partition_point(|&(lo, _)| lo <= p).checked_sub(1) {
            Some(i) => list[i].1 >= p,
            None => false,
        }
    }

    fn size_in_integers(&self) -> u64 {
        (self.post.len() + self.offsets.len() + 2 * self.intervals.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag) {
        let idx = IntervalIndex::build(dag, u64::MAX).unwrap();
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            assert_matches_bfs(&gen::random_dag(50, 150, seed));
        }
    }

    #[test]
    fn correct_on_trees_and_grids() {
        assert_matches_bfs(&gen::tree_plus_dag(80, 0, 1));
        assert_matches_bfs(&gen::tree_plus_dag(80, 30, 2));
        assert_matches_bfs(&gen::grid_dag(6, 7));
    }

    #[test]
    fn tree_needs_one_interval_per_vertex() {
        // On a pure tree the reachable set of each vertex is exactly its
        // subtree: a single interval.
        let dag = gen::tree_plus_dag(100, 0, 7);
        let idx = IntervalIndex::build(&dag, u64::MAX).unwrap();
        for v in 0..100u32 {
            assert_eq!(idx.list(v).len(), 1, "tree vertex {v} needs 1 interval");
        }
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        let mut buf = vec![(5, 7), (0, 2), (3, 4), (9, 9), (6, 8)];
        // (0,2)+(3,4)+(5,7)+(6,8) all chain together; (9,9) adjacent to 8.
        assert_eq!(coalesce(&mut buf), vec![(0, 9)]);
        let mut buf = vec![(0, 1), (4, 5)];
        assert_eq!(coalesce(&mut buf), vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn budget_enforced() {
        let dag = gen::random_dag(300, 2000, 3);
        assert!(matches!(
            IntervalIndex::build(&dag, 64),
            Err(GraphError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn edgeless_graph() {
        let dag = Dag::from_edges(5, &[]).unwrap();
        let idx = IntervalIndex::build(&dag, u64::MAX).unwrap();
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(idx.query(u, v), u == v);
            }
        }
    }
}
