//! TF-label (Cheng, Huang, Wu & Fu, SIGMOD 2013) — the paper's TF
//! baseline.
//!
//! §2.4 of the paper: "it can be considered a special case of HL where
//! ε = 1. The hierarchy being constructed … is based on iteratively
//! extracting a reachability backbone with ε = 1, inspired by
//! independent sets." This module instantiates exactly that special
//! case: [`HierarchicalLabeling`] with locality 1, whose per-level
//! backbone is a vertex cover (the complement of an independent set —
//! the topological folding of TF-label).
//!
//! With ε = 1 each level shrinks more slowly than HL's default ε = 2,
//! so TF is allowed more levels and a smaller core.

use hoplite_core::{HierarchicalLabeling, HlConfig, OrderKind, ReachIndex};
use hoplite_graph::{Dag, VertexId};

/// TF-label: topological-folding reachability labels.
pub struct TfLabel {
    inner: HierarchicalLabeling,
}

impl TfLabel {
    /// Builds TF-label with `core_size_limit` controlling where the
    /// folding stops (the inner core is labeled directly).
    pub fn build(dag: &Dag, core_size_limit: usize) -> Self {
        let cfg = HlConfig {
            eps: 1,
            core_size_limit,
            max_levels: 16,
            core_order: OrderKind::DegProduct,
            ..HlConfig::default()
        };
        TfLabel {
            inner: HierarchicalLabeling::build(dag, &cfg),
        }
    }

    /// Level sizes of the folding hierarchy.
    pub fn level_sizes(&self) -> &[usize] {
        self.inner.level_sizes()
    }

    /// The underlying labeling.
    pub fn labeling(&self) -> &hoplite_core::Labeling {
        self.inner.labeling()
    }
}

impl ReachIndex for TfLabel {
    fn name(&self) -> &'static str {
        "TF"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.inner.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        self.inner.size_in_integers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    #[test]
    fn correct_on_random_dags() {
        for seed in 0..6 {
            let dag = gen::random_dag(50, 140, seed);
            let idx = TfLabel::build(&dag, 8);
            for u in 0..50u32 {
                for v in 0..50u32 {
                    assert_eq!(
                        idx.query(u, v),
                        traversal::reaches(dag.graph(), u, v),
                        "mismatch at ({u},{v}) seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn correct_on_other_families() {
        for seed in 0..3 {
            for dag in [
                gen::tree_plus_dag(60, 20, seed),
                gen::power_law_dag(60, 170, seed),
                gen::layered_dag(60, 5, 140, seed),
            ] {
                let idx = TfLabel::build(&dag, 8);
                for u in 0..60u32 {
                    for v in 0..60u32 {
                        assert_eq!(idx.query(u, v), traversal::reaches(dag.graph(), u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn folds_into_multiple_levels() {
        let dag = gen::random_dag(300, 900, 5);
        let idx = TfLabel::build(&dag, 16);
        assert!(
            idx.level_sizes().len() >= 2,
            "ε=1 folding should produce a hierarchy: {:?}",
            idx.level_sizes()
        );
    }
}
