//! A small fixed-size thread pool over `std::sync::mpsc`.
//!
//! In [`ServeMode::ThreadPool`](crate::server::ServeMode) the server
//! hands each accepted connection to the pool, bounding the number of
//! concurrent connection-handler threads regardless of how many
//! clients connect — the latency-optimal mode when the persistent
//! client count is small and known. (The reactor mode in
//! `crate::reactor` inverts the trade: every socket multiplexed on
//! one thread, for connection counts a thread-per-connection design
//! cannot hold.) Jobs that panic are contained (`catch_unwind`), so
//! one poisoned connection cannot shrink the pool. Dropping the pool
//! is a graceful shutdown: the job channel closes, workers drain what
//! was already queued, then exit and are joined.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads consuming jobs from a shared queue.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<Sender<Job>>,
    /// Jobs sent but not yet started by a worker — the admission
    /// control layer's queue-depth signal. (The mpsc channel itself is
    /// unbounded; [`ThreadPool::try_execute`] bounds it.)
    pending: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns `size` workers (clamped to at least 1), named
    /// `{name}-{i}` for debuggability.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let pending = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let pending = Arc::clone(&pending);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver, &pending))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            workers,
            sender: Some(sender),
            pending,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet started by a worker.
    pub fn depth(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Queues a job; some idle worker picks it up.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// [`Self::execute`] with admission control: refuses (returning
    /// `Err(job)` untouched) when `limit` jobs are already waiting, so
    /// a wedged pool sheds instead of queueing unboundedly.
    pub fn try_execute<F: FnOnce() + Send + 'static>(&self, limit: usize, job: F) -> Result<(), F> {
        if self.depth() >= limit {
            return Err(job);
        }
        self.execute(job);
        Ok(())
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>, pending: &AtomicUsize) {
    loop {
        // Hold the queue lock only for the dequeue itself.
        let job = {
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => {
                pending.fetch_sub(1, Ordering::SeqCst);
                // A panicking job must not take the worker down with it.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => break, // channel closed: pool is shutting down
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_across_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4, "test");
        assert_eq!(pool.size(), 4);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // graceful: drains the queue, joins workers
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_size_clamps_to_one() {
        let pool = ThreadPool::new(0, "tiny");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn try_execute_bounds_the_queue() {
        let pool = ThreadPool::new(1, "bounded");
        // Wedge the single worker so queued jobs stay queued.
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        // Wait for the worker to pick the wedge job up.
        while pool.depth() > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let done = Arc::new(AtomicUsize::new(0));
        let mut refused = 0;
        for _ in 0..8 {
            let d = Arc::clone(&done);
            if pool
                .try_execute(2, move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
                .is_err()
            {
                refused += 1;
            }
        }
        assert!(
            pool.depth() <= 2,
            "depth {} exceeds the bound",
            pool.depth()
        );
        assert_eq!(refused, 6, "exactly 2 of 8 jobs fit under the bound");
        gate.store(1, Ordering::SeqCst);
        drop(pool); // drains the 2 admitted jobs
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2, "panicky");
        for _ in 0..4 {
            pool.execute(|| panic!("job goes boom"));
        }
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }
}
