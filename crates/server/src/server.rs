//! The TCP serving loop, in two flavors selected by
//! [`ServerConfig::mode`]:
//!
//! - [`ServeMode::ThreadPool`] (default): accept thread + connection
//!   thread pool, one blocking worker per connection. Connections
//!   beyond the worker count are refused with an explicit `ERROR`
//!   reply — never silently queued behind long-lived peers.
//! - [`ServeMode::Reactor`] (unix): a single epoll/kqueue event loop
//!   multiplexing every connection ([`crate::reactor`]), with
//!   cross-connection batch coalescing. Connections are never refused
//!   below the fd limit; a slow reader gets backpressure instead.
//!
//! Both speak the length-prefixed protocol of [`crate::protocol`]:
//! read a frame, decode, dispatch against the [`Registry`], reply.
//! Malformed payloads get an `ERROR` reply and the connection stays
//! usable (the length prefix already delimited the bad bytes); an
//! oversized length prefix gets a final `ERROR` and the connection is
//! closed, because framing can no longer be trusted. Reads poll with a
//! short timeout (or `epoll_wait` timeout) so idle connections notice
//! shutdown promptly without racing partially read frames.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::obs::ServerObs;
use crate::pool::ThreadPool;
use crate::protocol::{
    ErrorCode, FrameAccumulator, MetricsReport, Request, Response, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use crate::registry::{Registry, ServeError};

/// Which serving loop [`Server::bind`] starts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// One blocking worker thread per connection; concurrency capped
    /// at [`ServerConfig::workers`], over-capacity clients refused.
    #[default]
    ThreadPool,
    /// One event-loop thread multiplexing every connection via
    /// epoll/kqueue, coalescing in-flight frozen `REACH`/`BATCH`
    /// frames across connections into shared batch-kernel calls.
    /// Unix only; `bind` fails with `ErrorKind::Unsupported`
    /// elsewhere.
    Reactor,
}

/// Tunables for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Thread-pool vs reactor serving loop.
    pub mode: ServeMode,
    /// Connection-handler threads (thread-pool mode) — also the cap on
    /// concurrently *connected* clients: a connection occupies its
    /// worker for its whole lifetime, so connections beyond this are
    /// refused with an explicit `ERROR` reply rather than queued (a
    /// queued connection would hang silently behind long-lived peers).
    /// Size it for the expected number of persistent clients, not for
    /// CPU cores alone. Reactor mode ignores it: connections there
    /// cost fds, not threads.
    pub workers: usize,
    /// Fan-out width for `BATCH` on frozen namespaces
    /// ([`hoplite_core::parallel::par_query_batch_mapped`]) — in
    /// reactor mode, for each *coalesced* per-tick super-batch.
    pub batch_threads: usize,
    /// Largest accepted frame payload.
    pub max_frame_len: u32,
    /// How often a blocked read (thread-pool) or an idle `epoll_wait`
    /// (reactor) re-checks the shutdown flag.
    pub poll_interval: Duration,
    /// Reactor mode: once a connection's buffered unwritten replies
    /// exceed this many bytes, the reactor stops *reading* from it
    /// until the peer drains — bounding per-connection memory with
    /// backpressure instead of unbounded queueing.
    pub write_backpressure: usize,
    /// Maximum age of a frame between **accumulation** (its last byte
    /// arriving off the socket) and dispatch. A frame that sits queued
    /// past the deadline is answered with a `DEADLINE_EXCEEDED`
    /// refusal instead of consuming batch-kernel time — under overload
    /// the server does *useful* work first and tells stale work it was
    /// never done. `None` (the default) disables deadlines.
    pub request_deadline: Option<Duration>,
    /// Close connections that carried no traffic for this long.
    /// `None` (the default) keeps idle peers forever.
    pub idle_timeout: Option<Duration>,
    /// Slow-loris guard: close connections holding an incomplete frame
    /// (a length prefix or partial body with no follow-up bytes) for
    /// this long. `None` disables the guard.
    pub half_frame_deadline: Option<Duration>,
    /// Admission-control high-water mark on decoded frames awaiting
    /// dispatch — per reactor tick, or per connection in thread-pool
    /// mode. Past it, reads (`REACH`/`BATCH`) are shed with an
    /// `OVERLOADED` refusal carrying [`Self::retry_after`]; mutations
    /// are never shed (their ack is the WAL ack). `None` (the default)
    /// never sheds.
    pub shed_inflight_hwm: Option<usize>,
    /// Reactor mode: cap on query pairs admitted into one namespace's
    /// per-tick coalesced super-batch; frames past it are shed with
    /// `OVERLOADED`. `None` (the default) admits everything.
    pub shed_coalesced_pairs: Option<usize>,
    /// Thread-pool mode: bound on jobs queued waiting for a worker;
    /// connections arriving past it are refused with `OVERLOADED`.
    /// Zero means "use the worker count".
    pub pool_queue_limit: usize,
    /// Hard cap on bytes of replies buffered for one connection. A
    /// peer that stops reading long enough to cross it is disconnected
    /// (and counted as reaped) instead of buffered unboundedly —
    /// [`Self::write_backpressure`] throttles, this one evicts.
    pub max_conn_backlog: usize,
    /// Advisory "come back in this long" hint carried by `OVERLOADED`
    /// and `NOT_READY` refusals.
    pub retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            mode: ServeMode::ThreadPool,
            workers: cores.clamp(2, 16),
            batch_threads: cores.clamp(1, 8),
            max_frame_len: MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(25),
            write_backpressure: 256 * 1024,
            request_deadline: None,
            idle_timeout: None,
            half_frame_deadline: Some(Duration::from_secs(30)),
            shed_inflight_hwm: None,
            shed_coalesced_pairs: None,
            pool_queue_limit: 0,
            max_conn_backlog: 16 * 256 * 1024,
            retry_after: Duration::from_millis(100),
        }
    }
}

impl ServerConfig {
    /// The retry-after hint in the unit the wire carries (saturating;
    /// a hint longer than ~49 days caps out).
    pub(crate) fn retry_after_ms(&self) -> u32 {
        self.retry_after.as_millis().min(u32::MAX as u128) as u32
    }
}

/// Monotonic serving counters, shared by every serving thread.
#[derive(Default)]
pub(crate) struct ServerCounters {
    pub(crate) connections: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) rejected: AtomicU64,
    /// Connections currently held open (a pool worker in thread-pool
    /// mode; a slab slot in reactor mode).
    pub(crate) active: AtomicUsize,
    /// Frames answered through a shared (≥ 2-frame) coalesced batch
    /// call, and how many such calls ran (reactor mode only).
    pub(crate) coalesced_frames: AtomicU64,
    pub(crate) coalesced_calls: AtomicU64,
    /// Frames shed by admission control (`OVERLOADED` replies).
    pub(crate) frames_shed: AtomicU64,
    /// Frames that aged out before dispatch (`DEADLINE_EXCEEDED`).
    pub(crate) deadline_exceeded: AtomicU64,
    /// Connections closed by hygiene: idle timeout, slow-loris
    /// half-frame deadline, or the hard reply-backlog cap.
    pub(crate) connections_reaped: AtomicU64,
}

/// Books one outgoing reply into the shared counters — every serving
/// path (thread-pool, reactor inline, reactor scatter) funnels through
/// this so the exposition reconciles with what peers observed.
pub(crate) fn count_reply(counters: &ServerCounters, response: &Response) {
    counters.frames.fetch_add(1, Ordering::Relaxed);
    match response {
        Response::Error(_) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        Response::Fail { code, .. } => match code {
            ErrorCode::Overloaded => {
                counters.frames_shed.fetch_add(1, Ordering::Relaxed);
            }
            ErrorCode::DeadlineExceeded => {
                counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            ErrorCode::NotReady => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        },
        _ => {}
    }
}

/// The server entry point; see [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `registry` in background threads. Returns immediately;
    /// the returned handle reports the bound address and shuts the
    /// server down when told to (or on drop).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use hoplite_core::Oracle;
    /// use hoplite_graph::DiGraph;
    /// use hoplite_server::{Client, Registry, Server, ServerConfig};
    ///
    /// let registry = Arc::new(Registry::new());
    /// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    ///
    /// let handle = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    /// let mut client = Client::connect(handle.local_addr()).unwrap();
    /// assert!(client.reach("g", 0, 2).unwrap());
    /// handle.shutdown();
    /// ```
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let mode = config.mode;
        let config = Arc::new(config);
        let counters = Arc::new(ServerCounters::default());
        let accept_counters = Arc::clone(&counters);
        let obs = Arc::new(ServerObs::new());
        let accept_obs = Arc::clone(&obs);
        let handle_registry = Arc::clone(&registry);
        let accept = match mode {
            ServeMode::ThreadPool => std::thread::Builder::new()
                .name("hoplited-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        registry,
                        config,
                        accept_stop,
                        accept_counters,
                        accept_obs,
                    );
                })?,
            #[cfg(unix)]
            ServeMode::Reactor => std::thread::Builder::new()
                .name("hoplited-reactor".into())
                .spawn(move || {
                    crate::reactor::reactor_loop(
                        listener,
                        registry,
                        config,
                        accept_stop,
                        accept_counters,
                        accept_obs,
                    );
                })?,
            #[cfg(not(unix))]
            ServeMode::Reactor => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "ServeMode::Reactor needs epoll/kqueue; use ServeMode::ThreadPool",
                ))
            }
        };
        Ok(ServerHandle {
            local_addr,
            stop,
            accept: Some(accept),
            counters,
            obs,
            registry: handle_registry,
            metrics_thread: None,
        })
    }
}

/// Owns a running server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    counters: Arc<ServerCounters>,
    obs: Arc<ServerObs>,
    registry: Arc<Registry>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.counters.connections.load(Ordering::Relaxed)
    }

    /// Frames answered so far (including error replies).
    pub fn frames_served(&self) -> u64 {
        self.counters.frames.load(Ordering::Relaxed)
    }

    /// Error replies sent so far.
    pub fn errors_replied(&self) -> u64 {
        self.counters.errors.load(Ordering::Relaxed)
    }

    /// Connections refused because every worker was occupied
    /// (thread-pool mode only; the reactor never refuses).
    pub fn connections_rejected(&self) -> u64 {
        self.counters.rejected.load(Ordering::Relaxed)
    }

    /// Connections currently held open.
    pub fn connections_active(&self) -> usize {
        self.counters.active.load(Ordering::SeqCst)
    }

    /// Frames shed by admission control (`OVERLOADED` replies sent).
    pub fn frames_shed(&self) -> u64 {
        self.counters.frames_shed.load(Ordering::Relaxed)
    }

    /// Frames that aged out past [`ServerConfig::request_deadline`]
    /// before dispatch (`DEADLINE_EXCEEDED` replies sent).
    pub fn deadlines_exceeded(&self) -> u64 {
        self.counters.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Connections closed by hygiene (idle timeout, slow-loris
    /// half-frame deadline, or the hard reply-backlog cap).
    pub fn connections_reaped(&self) -> u64 {
        self.counters.connections_reaped.load(Ordering::Relaxed)
    }

    /// Frames answered through a shared coalesced batch call — i.e. a
    /// per-tick kernel invocation that served ≥ 2 frames (reactor
    /// mode).
    pub fn frames_coalesced(&self) -> u64 {
        self.counters.coalesced_frames.load(Ordering::Relaxed)
    }

    /// Coalesced batch-kernel calls that served ≥ 2 frames (reactor
    /// mode). `frames_coalesced / coalesce_calls` is the mean
    /// cross-connection batch depth the kernel actually saw.
    pub fn coalesce_calls(&self) -> u64 {
        self.counters.coalesced_calls.load(Ordering::Relaxed)
    }

    /// The same report the `METRICS` wire op serves: server-wide
    /// counters and serving-loop histograms, plus every namespace's
    /// query-path series (or just `ns`'s when non-empty).
    pub fn metrics(&self, ns: &str) -> MetricsReport {
        crate::obs::collect_metrics(&self.registry, &self.counters, &self.obs, ns)
    }

    /// Prometheus-style text exposition of [`ServerHandle::metrics`],
    /// with the slow-query log appended as comment lines — exactly
    /// what the `--metrics-addr` HTTP endpoint returns.
    pub fn metrics_text(&self) -> String {
        crate::obs::render_prometheus(
            &self.metrics(""),
            &crate::obs::collect_slow(&self.registry, ""),
        )
    }

    /// Starts the `GET /metrics` HTTP/1.0 responder on `addr` (port 0
    /// for ephemeral) in a background thread that lives until
    /// shutdown; returns the bound address.
    pub fn serve_metrics(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let (local, thread) = crate::obs::spawn_metrics_http(
            addr,
            Arc::clone(&self.registry),
            Arc::clone(&self.counters),
            Arc::clone(&self.obs),
            Arc::clone(&self.stop),
        )?;
        self.metrics_thread = Some(thread);
        Ok(local)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests
    /// finish, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let serving = self.accept.is_some() || self.metrics_thread.is_some();
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() call; any connection works.
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
        if serving {
            // Connections are drained: force any unsynced WAL tail to
            // stable storage. The group-commit policy only evaluates
            // inside appends, so the last acknowledged records of a
            // burst would otherwise sit in the page cache until the
            // next mutation arrives — a graceful shutdown must not
            // leave them there.
            for (ns, e) in self.registry.sync_all() {
                crate::log_error!("shutdown", "final WAL sync failed for {ns:?}: {e}");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    config: Arc<ServerConfig>,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    obs: Arc<ServerObs>,
) {
    // Dropping the pool at the end of this function joins the workers,
    // so `ServerHandle::shutdown` transitively waits for connections.
    let pool = ThreadPool::new(config.workers, "hoplited-conn");
    let queue_limit = if config.pool_queue_limit == 0 {
        pool.size()
    } else {
        config.pool_queue_limit
    };
    let retry_ms = config.retry_after_ms();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                // Every live connection pins a worker, so a saturated
                // pool must refuse loudly instead of queueing: a queued
                // connection would hang with no reply until some peer
                // disconnects. The bounded job queue is the second
                // gate: even below the connection cap, jobs stuck
                // waiting for a worker must not pile up unanswered.
                if counters.active.load(Ordering::SeqCst) >= pool.size() {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse_connection(
                        stream,
                        retry_ms,
                        format!(
                            "server at capacity ({} connections); retry later",
                            pool.size()
                        ),
                    );
                    continue;
                }
                if pool.depth() >= queue_limit {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse_connection(
                        stream,
                        retry_ms,
                        format!("connection queue full ({queue_limit} waiting); retry later"),
                    );
                    continue;
                }
                obs.pool_queue_depth.record(pool.depth() as u64);
                counters.connections.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::SeqCst);
                let registry = Arc::clone(&registry);
                let config = Arc::clone(&config);
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let obs = Arc::clone(&obs);
                pool.execute(move || {
                    // Release the slot even if the handler panics (the
                    // pool contains the panic; the capacity gate must
                    // still see the worker as free again).
                    struct Slot<'a>(&'a AtomicUsize);
                    impl Drop for Slot<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _slot = Slot(&counters.active);
                    serve_connection(stream, &registry, &config, &stop, &counters, &obs)
                });
            }
            Err(_) => {
                // Transient accept failure (EMFILE…): back off briefly
                // instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Tells a refused client why it is being turned away — an
/// `OVERLOADED` refusal with a retry-after hint, so client backoff
/// actually helps instead of hammering. Bounded by a short write
/// timeout so a slow peer cannot stall the accept thread.
fn refuse_connection(mut stream: TcpStream, retry_after_ms: u32, why: String) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = send_response(
        &mut stream,
        &Response::overloaded(retry_after_ms, why),
        PROTOCOL_VERSION,
    );
}

/// Replies echo the *request's* protocol version (see
/// [`Response::encode_versioned`]), so a v3 client pipelining against
/// a v4 server reads frames it can decode.
fn send_response(stream: &mut TcpStream, response: &Response, version: u8) -> io::Result<()> {
    let payload = response.encode_versioned(version).unwrap_or_else(|e| {
        Response::Error(format!("internal encode failure: {e}"))
            .encode_versioned(version)
            .expect("plain error replies always encode")
    });
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)
}

/// Best-effort version for error replies to frames that failed to
/// decode: echo the claimed version when it is inside the accepted
/// window, else answer in the current dialect.
pub(crate) fn salvage_version(payload: &[u8]) -> u8 {
    payload
        .first()
        .copied()
        .filter(|&v| crate::protocol::version_accepted(v))
        .unwrap_or(PROTOCOL_VERSION)
}

/// May this request be shed by admission control? Reads are cheap to
/// refuse and cheap to retry; mutations are never shed (the client
/// treats the reply as the WAL ack), and control-plane ops
/// (`PING`/`STATS`/`LIST`/`METRICS`) are exactly what an operator
/// needs *during* overload.
pub(crate) fn sheddable(request: &Request) -> bool {
    matches!(request, Request::Reach { .. } | Request::Batch { .. })
}

/// How long a slow peer may stall a blocking reply write before the
/// connection is closed — the thread-pool twin of the reactor's hard
/// backlog cap (there is no userspace reply queue here to bound, only
/// a worker wedged in `write`).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);

fn serve_connection(
    mut stream: TcpStream,
    registry: &Registry,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &ServerCounters,
    obs: &ServerObs,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
    let retry_ms = config.retry_after_ms();
    let mut acc = FrameAccumulator::new(config.max_frame_len);
    // Frames stamped at accumulation time (the read that completed
    // them) — the deadline clock starts here, and a pipelining client
    // can land many frames per read.
    let mut queue: VecDeque<(Vec<u8>, Instant)> = VecDeque::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut last_activity = Instant::now();
    let mut partial_since: Option<Instant> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A FrameTooLarge prefix poisons the stream (the oversized
        // body was never consumed): answer everything decoded before
        // it, send one final error, close.
        let mut poisoned: Option<WireError> = None;
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                let arrived = Instant::now();
                last_activity = arrived;
                acc.extend(&buf[..k]);
                loop {
                    match acc.next_frame() {
                        Ok(Some(payload)) => queue.push_back((payload, arrived)),
                        Ok(None) => break,
                        Err(e) => {
                            poisoned = Some(e);
                            break;
                        }
                    }
                }
                partial_since = if acc.pending_bytes() > 0 && poisoned.is_none() {
                    partial_since.or(Some(arrived))
                } else {
                    None
                };
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: connection hygiene runs here.
                if let Some(timeout) = config.idle_timeout {
                    if acc.pending_bytes() == 0 && last_activity.elapsed() >= timeout {
                        counters.connections_reaped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                if let (Some(deadline), Some(since)) = (config.half_frame_deadline, partial_since) {
                    if since.elapsed() >= deadline {
                        counters.connections_reaped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        if !queue.is_empty() {
            obs.inflight_frames.record(queue.len() as u64);
        }
        while let Some((payload, arrived)) = queue.pop_front() {
            let (response, version) = match Request::decode_with_version(&payload) {
                Ok((request, version)) => {
                    let expired = config.request_deadline.is_some_and(|deadline| {
                        !matches!(request, Request::Ping) && arrived.elapsed() > deadline
                    });
                    let shed = config
                        .shed_inflight_hwm
                        .is_some_and(|hwm| queue.len() > hwm && sheddable(&request));
                    let response = if expired {
                        Response::deadline_exceeded(format!(
                            "request aged out after {}ms queued",
                            arrived.elapsed().as_millis()
                        ))
                    } else if shed {
                        Response::overloaded(
                            retry_ms,
                            format!("shed: {} frames queued on this connection", queue.len() + 1),
                        )
                    } else {
                        handle_request(request, registry, config, counters, obs)
                    };
                    (response, version)
                }
                Err(e) => (
                    Response::Error(format!("bad request: {e}")),
                    salvage_version(&payload),
                ),
            };
            count_reply(counters, &response);
            obs.reply_latency_ns
                .record(arrived.elapsed().as_nanos() as u64);
            match send_response(&mut stream, &response, version) {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // The peer stopped reading long enough to wedge a
                    // blocking write: abusive, evict it.
                    counters.connections_reaped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => return,
            }
        }
        if let Some(err) = poisoned {
            counters.frames.fetch_add(1, Ordering::Relaxed);
            counters.errors.fetch_add(1, Ordering::Relaxed);
            let _ = send_response(
                &mut stream,
                &Response::Error(format!("bad request: {err}")),
                PROTOCOL_VERSION,
            );
            return; // cannot skip the oversized body safely
        }
    }
}

fn lookup(registry: &Registry, ns: &str) -> Result<crate::registry::NamespaceHandle, ServeError> {
    registry
        .get(ns)
        .ok_or_else(|| ServeError::UnknownNamespace(ns.to_owned()))
}

pub(crate) fn handle_request(
    request: Request,
    registry: &Registry,
    config: &ServerConfig,
    counters: &ServerCounters,
    obs: &ServerObs,
) -> Response {
    fn reply<T>(result: Result<T, ServeError>, ok: impl FnOnce(T) -> Response) -> Response {
        match result {
            Ok(v) => ok(v),
            Err(e) => Response::Error(e.to_string()),
        }
    }
    // Not ready (still loading / WAL replay in progress): refuse data-
    // plane work with a typed NOT_READY. PING stays answerable — it is
    // the liveness probe — and so does LIST (it reports what *has*
    // loaded so far).
    if !registry.is_ready() && !matches!(request, Request::Ping | Request::List) {
        return Response::not_ready(
            config.retry_after_ms(),
            "server is starting up (namespace load / WAL replay in progress)",
        );
    }
    match request {
        Request::Ping => Response::Pong,
        Request::List => Response::List(registry.list()),
        Request::Reach { ns, u, v } => reply(
            lookup(registry, &ns).and_then(|h| h.reach(u, v)),
            Response::Bool,
        ),
        Request::Batch { ns, pairs } => reply(
            lookup(registry, &ns).and_then(|h| h.reach_batch(&pairs, config.batch_threads)),
            Response::Bools,
        ),
        Request::AddEdge { ns, u, v } => reply(
            lookup(registry, &ns).and_then(|h| h.add_edge(&ns, u, v)),
            |()| Response::Bool(true),
        ),
        Request::RemoveEdge { ns, u, v } => reply(
            lookup(registry, &ns).and_then(|h| h.remove_edge(&ns, u, v)),
            Response::Bool,
        ),
        Request::Stats { ns } => reply(lookup(registry, &ns).map(|h| h.stats()), Response::Stats),
        Request::Metrics { ns } => {
            if !ns.is_empty() && registry.get(&ns).is_none() {
                Response::Error(ServeError::UnknownNamespace(ns).to_string())
            } else {
                Response::Metrics(crate::obs::collect_metrics(registry, counters, obs, &ns))
            }
        }
    }
}
