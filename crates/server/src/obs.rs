//! The flight recorder: serving-side observability built from the
//! std-only primitives in [`hoplite_core::metrics`].
//!
//! Three concerns live here, all allocation-free on the hot path:
//!
//! * **A leveled structured logger** — [`log`] plus the
//!   [`log_error!`]/[`log_warn!`]/[`log_info!`]/[`log_debug!`] macros —
//!   writing `timestamp LEVEL [context] message` lines to stderr. The
//!   threshold comes from `HOPLITE_LOG` (`debug|info|warn|error`,
//!   default `info`), read once per process. Timestamps are UTC,
//!   derived with the civil-from-days algorithm so no clock crate is
//!   needed.
//! * **Recording state** — [`ServerObs`] (reactor tick duration,
//!   coalesce batch size, per-connection queue depth, accept→reply
//!   latency, backpressure stalls) and the per-namespace [`QueryObs`]
//!   (query latency split by outcome, batch latency, and a
//!   [`SlowLog`] keeping the worst queries seen). Every member is a
//!   lock-free [`Counter`] or [`Histogram`]; the slow log takes its
//!   mutex only when a query beats the current worst-N floor.
//! * **Exposition** — [`collect_metrics`] folds everything into the
//!   wire-level [`MetricsReport`] served by the `METRICS` op, and
//!   [`render_prometheus`] turns that report into Prometheus-style
//!   text for the `--metrics-addr` HTTP endpoint
//!   ([`spawn_metrics_http`], a deliberately tiny HTTP/1.0 `GET
//!   /metrics` responder).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use hoplite_core::{Counter, Histogram};

use crate::protocol::{MetricsReport, MetricsSummary};
use crate::registry::Registry;
use crate::server::ServerCounters;

// ---------------------------------------------------------------------
// Leveled logger
// ---------------------------------------------------------------------

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Per-event detail (connection churn, tick internals).
    Debug,
    /// Lifecycle milestones (startup, namespaces loaded, shutdown).
    Info,
    /// Recoverable trouble (a refused connection, a bad frame).
    Warn,
    /// Serving-threatening failures (reactor poller death).
    Error,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        }
    }

    /// Parses a `HOPLITE_LOG` value; unknown strings get `None`.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

static LOG_LEVEL: OnceLock<LogLevel> = OnceLock::new();

/// The process-wide threshold: `HOPLITE_LOG` if set and parseable,
/// else `Info`. Read once; later environment changes are ignored.
pub fn log_level() -> LogLevel {
    *LOG_LEVEL.get_or_init(|| {
        std::env::var("HOPLITE_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    })
}

/// Would a message at `level` currently be emitted?
pub fn log_enabled(level: LogLevel) -> bool {
    level >= log_level()
}

/// Emits one structured line to stderr:
/// `2026-08-07T12:34:56.789Z INFO [serve] message`. The `context`
/// names the subsystem or connection the message is about. Prefer the
/// [`log_info!`]-family macros, which format lazily.
pub fn log(level: LogLevel, context: &str, message: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let stderr = io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(
        out,
        "{} {:5} [{}] {}",
        format_utc(SystemTime::now()),
        level.as_str(),
        context,
        message
    );
}

/// Logs at [`LogLevel::Error`]; `log_error!("ctx", "fmt {}", arg)`.
#[macro_export]
macro_rules! log_error {
    ($ctx:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::LogLevel::Error, $ctx, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($ctx:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::LogLevel::Warn, $ctx, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! log_info {
    ($ctx:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::LogLevel::Info, $ctx, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($ctx:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::LogLevel::Debug, $ctx, format_args!($($arg)*))
    };
}

/// `YYYY-MM-DDTHH:MM:SS.mmmZ` for a wall-clock instant, computed with
/// the days-to-civil algorithm (proleptic Gregorian) — no locale, no
/// leap-second pretense, no dependency.
pub fn format_utc(now: SystemTime) -> String {
    let since = now
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO);
    let secs = since.as_secs();
    let millis = since.subsec_millis();
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// Days since 1970-01-01 → (year, month, day).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if month <= 2 { year + 1 } else { year }, month, day)
}

// ---------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------

/// One retained worst-case query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// Source vertex.
    pub u: u32,
    /// Target vertex.
    pub v: u32,
    /// Wall time the query took.
    pub duration_ns: u64,
    /// Which stage answered it (`filter`/`signature`/`merge`/…).
    pub path: &'static str,
}

/// Keeps the worst `capacity` queries seen, by duration. The common
/// case — a query no slower than everything already retained — is a
/// single relaxed atomic load; the mutex is taken only on a new
/// worst-N entrant, which by construction becomes rare as the floor
/// rises.
pub struct SlowLog {
    capacity: usize,
    /// Once full: the smallest retained duration. Queries at or below
    /// it cannot displace anything, so they skip the lock entirely.
    floor: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowLog {
    /// A log retaining the worst `capacity` queries (clamped ≥ 1).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers one finished query; retained iff it beats the floor.
    pub fn record(&self, u: u32, v: u32, duration_ns: u64, path: &'static str) {
        if duration_ns <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = SlowQuery {
            u,
            v,
            duration_ns,
            path,
        };
        if entries.len() < self.capacity {
            entries.push(entry);
        } else {
            let (worst_idx, worst) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.duration_ns)
                .map(|(i, e)| (i, e.duration_ns))
                .expect("capacity >= 1");
            if duration_ns <= worst {
                // Lost the race against a concurrent recorder; refresh
                // the floor so the next such query skips the lock.
                self.floor.store(worst, Ordering::Relaxed);
                return;
            }
            entries[worst_idx] = entry;
        }
        if entries.len() == self.capacity {
            let floor = entries
                .iter()
                .map(|e| e.duration_ns)
                .min()
                .expect("capacity >= 1");
            self.floor.store(floor, Ordering::Relaxed);
        }
    }

    /// The retained queries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        entries.sort_by_key(|q| std::cmp::Reverse(q.duration_ns));
        entries
    }
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(16)
    }
}

// ---------------------------------------------------------------------
// Recording state
// ---------------------------------------------------------------------

/// Per-namespace query-path observability: latency split by the stage
/// that decided each single query, whole-batch latency, and the
/// worst-query log. Lives inside the registry's frozen-namespace
/// state; the histograms are lock-free so any number of serving
/// threads record concurrently.
pub struct QueryObs {
    /// Single `REACH` latency for queries the O(1) pre-filter stack
    /// decided.
    pub filter_ns: Histogram,
    /// Single `REACH` latency for queries the signature `AND` killed.
    pub signature_ns: Histogram,
    /// Single `REACH` latency for queries that ran the label merge.
    pub merge_ns: Histogram,
    /// Whole-`BATCH` call latency (all pairs, one record).
    pub batch_ns: Histogram,
    /// Worst single queries seen, whatever their path.
    pub slow: SlowLog,
}

impl QueryObs {
    /// Fresh, empty recording state.
    pub fn new() -> QueryObs {
        QueryObs {
            filter_ns: Histogram::new(),
            signature_ns: Histogram::new(),
            merge_ns: Histogram::new(),
            batch_ns: Histogram::new(),
            slow: SlowLog::default(),
        }
    }

    /// Records one finished single query, classified by the stage the
    /// tally says decided it.
    pub fn record_single(
        &self,
        u: u32,
        v: u32,
        duration_ns: u64,
        tally: &hoplite_core::QueryTally,
    ) {
        let (histogram, path) = if tally.filter_decided > 0 {
            (&self.filter_ns, "filter")
        } else if tally.signature_cut > 0 {
            (&self.signature_ns, "signature")
        } else {
            (&self.merge_ns, "merge")
        };
        histogram.record(duration_ns);
        self.slow.record(u, v, duration_ns, path);
    }
}

impl Default for QueryObs {
    fn default() -> Self {
        QueryObs::new()
    }
}

/// Server-wide serving-loop observability, shared by every serving
/// thread. Reactor-specific members stay zero under the thread-pool
/// server — harmless in the exposition.
pub struct ServerObs {
    /// Reactor: duration of each non-idle tick (events were ready).
    pub tick_ns: Histogram,
    /// Reactor: pairs per coalesced per-namespace kernel call.
    pub coalesce_batch: Histogram,
    /// Bytes of buffered unwritten replies per connection, sampled
    /// after each tick's scatter.
    pub queue_depth: Histogram,
    /// Frame-in to reply-encoded latency, per frame.
    pub reply_latency_ns: Histogram,
    /// Reactor: times a connection crossed the write-backpressure
    /// threshold and stopped being read.
    pub stall_count: Counter,
    /// Total nanoseconds connections spent read-paused by
    /// backpressure.
    pub stall_ns: Counter,
    /// Thread-pool: jobs waiting for a worker, sampled per accepted
    /// connection.
    pub pool_queue_depth: Histogram,
    /// Decoded frames awaiting dispatch, sampled per reactor tick (or
    /// per drained read in thread-pool mode) — the admission-control
    /// pressure gauge.
    pub inflight_frames: Histogram,
}

impl ServerObs {
    /// Fresh, empty recording state.
    pub fn new() -> ServerObs {
        ServerObs {
            tick_ns: Histogram::new(),
            coalesce_batch: Histogram::new(),
            queue_depth: Histogram::new(),
            reply_latency_ns: Histogram::new(),
            stall_count: Counter::new(),
            stall_ns: Counter::new(),
            pool_queue_depth: Histogram::new(),
            inflight_frames: Histogram::new(),
        }
    }
}

impl Default for ServerObs {
    fn default() -> Self {
        ServerObs::new()
    }
}

// ---------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------

/// Folds the server counters, serving-loop histograms, and (frozen)
/// per-namespace query observability into one [`MetricsReport`] — the
/// single source both the `METRICS` wire op and the `/metrics` text
/// endpoint serve from. An empty `ns_filter` includes every
/// namespace; a non-empty one restricts the per-namespace section to
/// that name (the caller is responsible for rejecting unknown names).
pub(crate) fn collect_metrics(
    registry: &Registry,
    counters: &ServerCounters,
    obs: &ServerObs,
    ns_filter: &str,
) -> MetricsReport {
    let mut report = MetricsReport::default();
    let c = |name: &str, value: u64| (name.to_owned(), value);
    report.counters.push(c(
        "server_connections_total",
        counters.connections.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_frames_total",
        counters.frames.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_errors_total",
        counters.errors.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_rejected_total",
        counters.rejected.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_connections_active",
        counters.active.load(Ordering::SeqCst) as u64,
    ));
    report.counters.push(c(
        "server_frames_shed_total",
        counters.frames_shed.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_deadline_exceeded_total",
        counters.deadline_exceeded.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "server_connections_reaped_total",
        counters.connections_reaped.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "reactor_coalesced_frames_total",
        counters.coalesced_frames.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "reactor_coalesce_calls_total",
        counters.coalesced_calls.load(Ordering::Relaxed),
    ));
    report.counters.push(c(
        "reactor_backpressure_stalls_total",
        obs.stall_count.get(),
    ));
    report
        .counters
        .push(c("reactor_backpressure_stall_ns_total", obs.stall_ns.get()));

    let h =
        |name: &str, hist: &Histogram| (name.to_owned(), MetricsSummary::from(&hist.snapshot()));
    report.histograms.push(h("reactor_tick_ns", &obs.tick_ns));
    report
        .histograms
        .push(h("reactor_coalesce_batch_pairs", &obs.coalesce_batch));
    report
        .histograms
        .push(h("server_queue_depth_bytes", &obs.queue_depth));
    report
        .histograms
        .push(h("server_reply_latency_ns", &obs.reply_latency_ns));
    report
        .histograms
        .push(h("server_pool_queue_depth", &obs.pool_queue_depth));
    report
        .histograms
        .push(h("server_inflight_frames", &obs.inflight_frames));

    for (name, handle) in registry.handles() {
        if !ns_filter.is_empty() && name != ns_filter {
            continue;
        }
        handle.fold_metrics(&name, &mut report);
    }
    report
}

/// Every namespace's retained slow queries, as `(namespace, query)`
/// pairs sorted slowest-first within each namespace.
pub(crate) fn collect_slow(registry: &Registry, ns_filter: &str) -> Vec<(String, SlowQuery)> {
    let mut out = Vec::new();
    for (name, handle) in registry.handles() {
        if !ns_filter.is_empty() && name != ns_filter {
            continue;
        }
        for q in handle.slow_queries() {
            out.push((name.clone(), q));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------

/// Splits `ns_query_latency_ns{ns="g",outcome="merge"}` into the base
/// name and its label body (without braces).
fn split_name(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(open), true) => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// `base` + labels (+ an extra label) reassembled into a series name.
fn series(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut out = String::with_capacity(base.len() + 32);
    out.push_str(base);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (Some(l), None) => {
            out.push('{');
            out.push_str(l);
            out.push('}');
        }
        (None, Some(e)) => {
            out.push('{');
            out.push_str(e);
            out.push('}');
        }
        (Some(l), Some(e)) => {
            out.push('{');
            out.push_str(l);
            out.push(',');
            out.push_str(e);
            out.push('}');
        }
    }
    out
}

/// Renders a [`MetricsReport`] (plus the slow-query log, emitted as
/// trailing comment lines) as Prometheus-style text: counters as
/// plain series, histograms as summaries with `quantile` labels and
/// `_count`/`_sum`/`_max` companions.
pub fn render_prometheus(report: &MetricsReport, slow: &[(String, SlowQuery)]) -> String {
    let mut out = String::new();
    let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (name, value) in &report.counters {
        let (base, labels) = split_name(name);
        if typed.insert(base) {
            out.push_str(&format!("# TYPE {base} counter\n"));
        }
        out.push_str(&format!("{} {value}\n", series(base, "", labels, None)));
    }
    for (name, summary) in &report.histograms {
        let (base, labels) = split_name(name);
        if typed.insert(base) {
            out.push_str(&format!("# TYPE {base} summary\n"));
        }
        for (q, v) in [
            ("0.5", summary.p50),
            ("0.9", summary.p90),
            ("0.99", summary.p99),
            ("0.999", summary.p999),
        ] {
            out.push_str(&format!(
                "{} {v}\n",
                series(base, "", labels, Some(&format!("quantile=\"{q}\"")))
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            series(base, "_count", labels, None),
            summary.count
        ));
        out.push_str(&format!(
            "{} {}\n",
            series(base, "_sum", labels, None),
            summary.sum
        ));
        out.push_str(&format!(
            "{} {}\n",
            series(base, "_max", labels, None),
            summary.max
        ));
    }
    for (ns, q) in slow {
        out.push_str(&format!(
            "# slow_query ns={ns:?} u={} v={} duration_ns={} path={}\n",
            q.u, q.v, q.duration_ns, q.path
        ));
    }
    out
}

// ---------------------------------------------------------------------
// The /metrics HTTP responder
// ---------------------------------------------------------------------

/// Binds `addr` and serves `GET /metrics` as HTTP/1.0 plain text from
/// a background thread, re-collecting a fresh report per request.
/// Also answers the health probes: `GET /healthz` is 200 whenever the
/// process serves HTTP at all (liveness), and `GET /readyz` is 200
/// only while [`Registry::readiness`] passes — 503 during namespace
/// load / WAL replay and when a namespace is wedged mid-rebuild.
/// Returns the bound address and the thread handle; the thread exits
/// once `stop` is set (checked every poll interval).
pub(crate) fn spawn_metrics_http(
    addr: impl ToSocketAddrs,
    registry: Arc<Registry>,
    counters: Arc<ServerCounters>,
    obs: Arc<ServerObs>,
    stop: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("hoplited-metrics".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        answer_http(stream, &registry, &counters, &obs);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
        })?;
    Ok((local, handle))
}

/// One request–one response: read the request head (bounded), answer,
/// close. Scrapers reconnect per scrape; this endpoint is for a
/// handful of requests per minute, not for QPS.
fn answer_http(
    mut stream: std::net::TcpStream,
    registry: &Registry,
    counters: &ServerCounters,
    obs: &ServerObs,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut head = [0u8; 1024];
    let mut filled = 0;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(k) => {
                filled += k;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&head[..filled]);
    let first = request.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        let report = collect_metrics(registry, counters, obs, "");
        let slow = collect_slow(registry, "");
        ("200 OK", render_prometheus(&report, &slow))
    } else if method == "GET" && path == "/healthz" {
        ("200 OK", "ok\n".to_owned())
    } else if method == "GET" && path == "/readyz" {
        match registry.readiness() {
            Ok(()) => ("200 OK", "ready\n".to_owned()),
            Err(why) => ("503 Service Unavailable", format!("not ready: {why}\n")),
        }
    } else {
        (
            "404 Not Found",
            "only GET /metrics, /healthz, /readyz are served\n".to_owned(),
        )
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_core::Oracle;
    use hoplite_graph::DiGraph;

    #[test]
    fn log_levels_parse_and_order() {
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse(" WARN "), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("nope"), None);
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
    }

    #[test]
    fn utc_formatting_hits_known_instants() {
        let t = SystemTime::UNIX_EPOCH + Duration::from_secs(0);
        assert_eq!(format_utc(t), "1970-01-01T00:00:00.000Z");
        // 2000-03-01T12:34:56.789Z — the day after a century leap day.
        let t = SystemTime::UNIX_EPOCH + Duration::from_millis(951_914_096_789);
        assert_eq!(format_utc(t), "2000-03-01T12:34:56.789Z");
        // 2024-02-29 exists; 2023 had no Feb 29.
        let t = SystemTime::UNIX_EPOCH + Duration::from_secs(1_709_164_800);
        assert!(format_utc(t).starts_with("2024-02-29T"));
    }

    #[test]
    fn slow_log_retains_the_worst_n() {
        let log = SlowLog::new(3);
        for (i, d) in [50u64, 10, 30, 40, 20, 60, 5].iter().enumerate() {
            log.record(i as u32, i as u32, *d, "merge");
        }
        let worst: Vec<u64> = log.snapshot().iter().map(|q| q.duration_ns).collect();
        assert_eq!(worst, [60, 50, 40]);
        // Floor is now 40: a 39ns query cannot enter.
        log.record(99, 99, 39, "merge");
        assert_eq!(log.snapshot().len(), 3);
        assert!(log.snapshot().iter().all(|q| q.u != 99));
    }

    #[test]
    fn query_obs_classifies_by_tally() {
        let obs = QueryObs::new();
        let tally = hoplite_core::QueryTally {
            filter_decided: 1,
            ..Default::default()
        };
        obs.record_single(0, 1, 100, &tally);
        let tally = hoplite_core::QueryTally {
            signature_cut: 1,
            ..Default::default()
        };
        obs.record_single(0, 2, 200, &tally);
        let tally = hoplite_core::QueryTally::default();
        obs.record_single(0, 3, 300, &tally);
        assert_eq!(obs.filter_ns.count(), 1);
        assert_eq!(obs.signature_ns.count(), 1);
        assert_eq!(obs.merge_ns.count(), 1);
        let slow = obs.slow.snapshot();
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].path, "merge");
        assert_eq!(slow[0].duration_ns, 300);
    }

    #[test]
    fn split_and_series_compose_label_bodies() {
        assert_eq!(split_name("plain"), ("plain", None));
        assert_eq!(
            split_name("x{ns=\"g\",outcome=\"merge\"}"),
            ("x", Some("ns=\"g\",outcome=\"merge\""))
        );
        assert_eq!(
            series("lat", "_count", Some("ns=\"g\""), None),
            "lat_count{ns=\"g\"}"
        );
        assert_eq!(
            series("lat", "", Some("ns=\"g\""), Some("quantile=\"0.5\"")),
            "lat{ns=\"g\",quantile=\"0.5\"}"
        );
        assert_eq!(series("lat", "", None, Some("q=\"1\"")), "lat{q=\"1\"}");
    }

    #[test]
    fn collect_and_render_cover_namespaces_and_server() {
        let registry = Registry::new();
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let ns = registry.get("g").unwrap();
        for u in 0..4 {
            for v in 0..4 {
                ns.reach(u, v).unwrap();
            }
        }
        ns.reach_batch(&[(0, 3), (3, 0)], 1).unwrap();
        let counters = ServerCounters::default();
        counters.frames.fetch_add(17, Ordering::Relaxed);
        let obs = ServerObs::new();
        obs.tick_ns.record(1_000);
        obs.coalesce_batch.record(8);

        let report = collect_metrics(&registry, &counters, &obs, "");
        assert_eq!(report.counter("server_frames_total"), Some(17));
        assert_eq!(report.counter("ns_queries_total{ns=\"g\"}"), Some(18));
        let outcome_total: u64 = ["filter", "signature", "merge"]
            .iter()
            .filter_map(|o| {
                report.counter(&format!(
                    "ns_query_outcome_total{{ns=\"g\",outcome=\"{o}\"}}"
                ))
            })
            .sum();
        assert_eq!(outcome_total, 18, "every query died in exactly one stage");
        assert!(report
            .histogram("ns_batch_latency_ns{ns=\"g\"}")
            .is_some_and(|s| s.count == 1));

        // A filtered collection keeps server metrics, drops other ns.
        registry.insert_frozen("other", Oracle::new(&g)).unwrap();
        let filtered = collect_metrics(&registry, &counters, &obs, "g");
        assert!(filtered.counter("ns_queries_total{ns=\"g\"}").is_some());
        assert!(filtered.counter("ns_queries_total{ns=\"other\"}").is_none());

        let text = render_prometheus(&report, &collect_slow(&registry, ""));
        assert!(text.contains("# TYPE server_frames_total counter"));
        assert!(text.contains("server_frames_total 17"));
        assert!(text.contains("reactor_tick_ns{quantile=\"0.99\"}"));
        assert!(text.contains("ns_query_latency_ns_count{ns=\"g\",outcome="));
        assert!(text.contains("# slow_query ns=\"g\""));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
            assert!(!name.is_empty() && parts.next().is_none(), "{line}");
            value.parse::<u64>().unwrap_or_else(|_| panic!("{line}"));
        }
    }

    #[test]
    fn http_responder_serves_metrics_and_404s() {
        let registry = Arc::new(Registry::new());
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        registry.get("g").unwrap().reach(0, 1).unwrap();
        let counters = Arc::new(ServerCounters::default());
        let obs = Arc::new(ServerObs::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, thread) = spawn_metrics_http(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Arc::clone(&counters),
            Arc::clone(&obs),
            Arc::clone(&stop),
        )
        .unwrap();

        let fetch = |path: &str| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
            let mut body = String::new();
            s.read_to_string(&mut body).unwrap();
            body
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain"));
        assert!(ok.contains("ns_queries_total{ns=\"g\"} 1"), "{ok}");
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap();
    }

    fn spawn_fixture() -> (
        Arc<Registry>,
        SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let registry = Arc::new(Registry::new());
        let counters = Arc::new(ServerCounters::default());
        let obs = Arc::new(ServerObs::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, thread) = spawn_metrics_http(
            "127.0.0.1:0",
            Arc::clone(&registry),
            counters,
            obs,
            Arc::clone(&stop),
        )
        .unwrap();
        (registry, addr, stop, thread)
    }

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        body
    }

    #[test]
    fn http_responder_answers_health_and_readiness() {
        let (registry, addr, stop, thread) = spawn_fixture();
        // Liveness is unconditional; readiness tracks the registry.
        assert!(fetch(addr, "/healthz").starts_with("HTTP/1.0 200"));
        assert!(fetch(addr, "/readyz").starts_with("HTTP/1.0 200"));
        registry.set_ready(false);
        let not_ready = fetch(addr, "/readyz");
        assert!(not_ready.starts_with("HTTP/1.0 503"), "{not_ready}");
        assert!(not_ready.contains("not ready"), "{not_ready}");
        assert!(fetch(addr, "/healthz").starts_with("HTTP/1.0 200"));
        registry.set_ready(true);
        assert!(fetch(addr, "/readyz").starts_with("HTTP/1.0 200"));
        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap();
    }

    #[test]
    fn http_responder_tolerates_malformed_request_lines() {
        let (_registry, addr, stop, thread) = spawn_fixture();
        let send_raw = |bytes: &[u8]| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(bytes).unwrap();
            let mut body = String::new();
            let _ = s.read_to_string(&mut body); // close may race the reply
            body
        };
        // A well-formed-but-wrong method, a bare newline, binary junk,
        // a request line with no path — none may wedge the responder.
        for raw in [
            b"POST /metrics HTTP/1.0\r\n\r\n".as_slice(),
            b"\r\n\r\n".as_slice(),
            b"\xFF\xFE\x00garbage\r\n\r\n".as_slice(),
            b"GET\r\n\r\n".as_slice(),
        ] {
            let reply = send_raw(raw);
            assert!(
                reply.is_empty() || reply.starts_with("HTTP/1.0 404"),
                "{reply:?}"
            );
        }
        // A peer that connects and says nothing (the responder times
        // the read out), and one that closes immediately.
        drop(std::net::TcpStream::connect(addr).unwrap());
        // The listener must still serve a real scrape afterwards.
        assert!(fetch(addr, "/metrics").starts_with("HTTP/1.0 200"));
        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap();
    }

    #[test]
    fn http_responder_survives_connection_per_scrape_churn() {
        let (_registry, addr, stop, thread) = spawn_fixture();
        // Prometheus reconnects per scrape: every cycle must get a
        // complete, well-formed response on a fresh connection.
        for round in 0..50 {
            let reply = fetch(addr, "/metrics");
            assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"), "round {round}");
            assert!(reply.contains("server_frames_total"), "round {round}");
        }
        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap();
    }

    #[test]
    fn http_responder_shuts_down_cleanly_mid_churn() {
        let (_registry, addr, stop, thread) = spawn_fixture();
        assert!(fetch(addr, "/metrics").starts_with("HTTP/1.0 200"));
        // Flip stop and race one more scrape against the shutdown: it
        // may be answered, refused, or reset — but never hang, and the
        // responder thread must still join.
        stop.store(true, Ordering::SeqCst);
        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = write!(s, "GET /metrics HTTP/1.0\r\n\r\n");
            let mut body = String::new();
            let _ = s.read_to_string(&mut body);
            assert!(body.is_empty() || body.starts_with("HTTP/1.0 "), "{body:?}");
        }
        thread.join().unwrap();
    }
}
