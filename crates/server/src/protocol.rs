//! The hoplite wire protocol: small, versioned, length-prefixed
//! binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame   := len:u32-le  payload          (len excludes the prefix)
//! payload := version:u8  opcode:u8  body
//! ```
//!
//! Request opcodes and bodies (all integers little-endian; `name` is a
//! `u8` length followed by that many UTF-8 bytes):
//!
//! | opcode | request       | body                         |
//! |-------:|---------------|------------------------------|
//! | `0x01` | `PING`        | —                            |
//! | `0x02` | `REACH`       | `name u:u32 v:u32`           |
//! | `0x03` | `BATCH`       | `name k:u32 (u:u32 v:u32)×k` |
//! | `0x04` | `ADD_EDGE`    | `name u:u32 v:u32`           |
//! | `0x05` | `REMOVE_EDGE` | `name u:u32 v:u32`           |
//! | `0x06` | `STATS`       | `name`                       |
//! | `0x07` | `LIST`        | —                            |
//! | `0x08` | `METRICS`     | `name` (empty ⇒ server-wide; v4+) |
//!
//! Response opcodes: `0x81 PONG`, `0x82 BOOL (b:u8)`, `0x83 BOOLS
//! (k:u32 + ⌈k/8⌉ LSB-first packed bytes)`, `0x86 STATS`, `0x87 LIST`,
//! `0x88 METRICS (v4+)`, `0xEE ERROR (msg as u16-prefixed UTF-8)`,
//! `0xEF FAIL (code:u8 retry_after_ms:u32 msg; v6+)` — the machine-
//! readable refusal the overload-control layer speaks.
//!
//! Decoding is strict: bad version, unknown opcode, short bodies,
//! trailing bytes, oversized counts, non-zero padding bits, and
//! non-UTF-8 names are all [`WireError`]s — never panics. The server
//! turns them into `ERROR` replies; framing stays intact because the
//! length prefix already delimited the bad payload.

use std::fmt;
use std::io::{self, Read, Write};

/// Current wire protocol version — what this side encodes by default.
///
/// Version history: `1` — the original opcode set; `2` — the `STATS`
/// reply body grew four `u64` fields (signature bytes and the
/// filter/signature/merge death counters); `3` — the `STATS` reply
/// grew the storage-backend report (`backend:u8` +
/// `heap_bytes`/`mapped_bytes:u64`, the heap-vs-mapped split of a
/// namespace's index arrays); `4` — the `METRICS` op (`0x08` /
/// `0x88`): a named counter + latency-histogram-summary dump of the
/// server's observability layer, and the first version to *accept*
/// its predecessor — decoders take any version in
/// [`PROTOCOL_VERSION_MIN`]`..=`[`PROTOCOL_VERSION`], the server
/// echoes the request's version in its reply (so a strict v3 client
/// still parses every answer), and the `METRICS` opcode itself
/// requires v4 (a v3 frame carrying it gets
/// [`WireError::UnknownOpcode`], exactly what a v3-era server would
/// have said). Anything outside the window is a clean
/// [`WireError::Version`] instead of a confusing
/// trailing-bytes/short-body error; `5` — the `STATS` reply grew the
/// durability/rebuild report (`wal_bytes`, `wal_records`, `rebuilds`
/// as `u64` + `rebuild_in_flight:u8`), encoded only when the frame
/// speaks v5 — a v3/v4 `STATS` reply stays byte-identical and older
/// decoders keep parsing; `6` — the coded-failure reply (`0xEF FAIL`:
/// `code:u8 retry_after_ms:u32 msg`), letting overload control speak
/// machine-readable refusals — `DEADLINE_EXCEEDED` (the frame aged
/// out before dispatch; not retryable, the work was never done),
/// `OVERLOADED` (shed by admission control; retry after the hint),
/// and `NOT_READY` (WAL replay or startup still in progress). A
/// pre-v6 frame carries the same refusal as a plain `ERROR` with the
/// code name prefixed to the text, so strict older decoders keep
/// parsing and humans keep reading.
pub const PROTOCOL_VERSION: u8 = 6;
/// Oldest protocol version decoders still accept (see the version
/// history on [`PROTOCOL_VERSION`]).
pub const PROTOCOL_VERSION_MIN: u8 = 3;
/// Hard ceiling on a frame payload; larger length prefixes are
/// rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;
/// Namespace names are `u8`-length-prefixed.
pub const MAX_NAME_LEN: usize = 255;
/// Ceiling on `BATCH` pair counts (8 MiB of body).
pub const MAX_BATCH_PAIRS: u32 = 1 << 20;

const OP_PING: u8 = 0x01;
const OP_REACH: u8 = 0x02;
const OP_BATCH: u8 = 0x03;
const OP_ADD_EDGE: u8 = 0x04;
const OP_REMOVE_EDGE: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_LIST: u8 = 0x07;
const OP_METRICS: u8 = 0x08;

const RE_PONG: u8 = 0x81;
const RE_BOOL: u8 = 0x82;
const RE_BOOLS: u8 = 0x83;
const RE_STATS: u8 = 0x86;
const RE_LIST: u8 = 0x87;
const RE_METRICS: u8 = 0x88;
const RE_ERROR: u8 = 0xEE;
const RE_FAIL: u8 = 0xEF;

/// Is `version` inside the accepted decode window?
#[inline]
pub(crate) fn version_accepted(version: u8) -> bool {
    (PROTOCOL_VERSION_MIN..=PROTOCOL_VERSION).contains(&version)
}

/// Anything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (includes EOF mid-frame).
    Io(io::Error),
    /// A length prefix larger than the negotiated maximum.
    FrameTooLarge {
        /// Length the prefix declared.
        len: u32,
        /// Maximum the reader accepts.
        max: u32,
    },
    /// Payload carried an unsupported protocol version.
    Version(u8),
    /// Payload carried an opcode this side does not know.
    UnknownOpcode(u8),
    /// Structurally invalid body (short, trailing bytes, bad UTF-8…).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::Version(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speaker supports \
                     {PROTOCOL_VERSION_MIN}..={PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing `max_len` before allocating.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Vec<u8>, WireError> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr);
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Incremental frame decoder for nonblocking transports.
///
/// [`read_frame`] needs a blocking reader; the reactor gets bytes in
/// arbitrary slices (half a length prefix now, three frames at once
/// later). An accumulator buffers whatever arrives and yields complete
/// payloads as they materialize, tolerating byte-at-a-time input:
///
/// ```
/// use hoplite_server::protocol::{FrameAccumulator, Request};
///
/// let payload = Request::Ping.encode().unwrap();
/// let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
/// frame.extend_from_slice(&payload);
///
/// let mut acc = FrameAccumulator::new(1024);
/// for &byte in &frame[..frame.len() - 1] {
///     acc.extend(&[byte]);
///     assert!(acc.next_frame().unwrap().is_none(), "frame not complete yet");
/// }
/// acc.extend(&frame[frame.len() - 1..]);
/// assert_eq!(acc.next_frame().unwrap().unwrap(), payload);
/// ```
///
/// A length prefix over the limit is a [`WireError::FrameTooLarge`];
/// after that error the stream can no longer be trusted (the oversized
/// body was never consumed) and the connection must close once the
/// error reply flushes.
#[derive(Debug)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes before `pos` belong to already-yielded frames.
    pos: usize,
    max_len: u32,
}

impl FrameAccumulator {
    /// An empty accumulator enforcing `max_len` on every frame.
    pub fn new(max_len: u32) -> FrameAccumulator {
        FrameAccumulator {
            buf: Vec::new(),
            pos: 0,
            max_len,
        }
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its in-flight
        // data, not its lifetime traffic.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Yields the next complete frame payload, `None` if more bytes
    /// are needed, or [`WireError::FrameTooLarge`] if the pending
    /// length prefix exceeds the limit.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > self.max_len {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_len,
            });
        }
        let len = len as usize;
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------
// Body reader/writer primitives
// ---------------------------------------------------------------------

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError::Malformed(format!(
                    "body truncated: wanted {n} more bytes at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// `u8`-length-prefixed UTF-8 string (namespace names).
    fn name(&mut self) -> Result<String, WireError> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("name is not valid UTF-8".into()))
    }

    /// `u16`-length-prefixed UTF-8 string (error messages).
    fn text(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("text is not valid UTF-8".into()))
    }

    /// Bytes not yet consumed — used to sanity-check claimed element
    /// counts before allocating for them.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Rejects payloads with bytes past the decoded body.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_name(out: &mut Vec<u8>, name: &str) -> Result<(), WireError> {
    if name.len() > MAX_NAME_LEN {
        return Err(WireError::Malformed(format!(
            "name of {} bytes exceeds the {MAX_NAME_LEN}-byte limit",
            name.len()
        )));
    }
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    Ok(())
}

fn put_text(out: &mut Vec<u8>, text: &str) {
    // Error messages are advisory; truncate (on a char boundary) rather
    // than fail the reply.
    let mut end = text.len().min(u16::MAX as usize);
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(out, end as u16);
    out.extend_from_slice(&text.as_bytes()[..end]);
}

fn pack_bools(out: &mut Vec<u8>, bools: &[bool]) {
    put_u32(out, bools.len() as u32);
    let mut byte = 0u8;
    for (i, &b) in bools.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if bools.len() % 8 != 0 {
        out.push(byte);
    }
}

fn unpack_bools(r: &mut ByteReader<'_>) -> Result<Vec<bool>, WireError> {
    let k = r.u32()?;
    if k > MAX_BATCH_PAIRS {
        return Err(WireError::Malformed(format!(
            "answer count {k} exceeds the {MAX_BATCH_PAIRS} limit"
        )));
    }
    let k = k as usize;
    let bytes = r.take(k.div_ceil(8))?;
    let mut out = Vec::with_capacity(k);
    for (i, &byte) in bytes.iter().enumerate() {
        let bits = if i == k / 8 { k % 8 } else { 8 };
        if bits < 8 && byte >> bits != 0 {
            return Err(WireError::Malformed("non-zero padding bits".into()));
        }
        for j in 0..bits {
            out.push(byte >> j & 1 == 1);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Shared wire types
// ---------------------------------------------------------------------

/// Whether a namespace serves a frozen snapshot or accepts mutations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamespaceKind {
    /// An immutable [`hoplite_core::Oracle`] snapshot; queries take the
    /// lock-free frozen-label fast path.
    Frozen,
    /// A [`hoplite_core::DynamicOracle`] accepting `ADD_EDGE` /
    /// `REMOVE_EDGE`.
    Dynamic,
}

impl NamespaceKind {
    fn to_u8(self) -> u8 {
        match self {
            NamespaceKind::Frozen => 0,
            NamespaceKind::Dynamic => 1,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(NamespaceKind::Frozen),
            1 => Ok(NamespaceKind::Dynamic),
            other => Err(WireError::Malformed(format!(
                "unknown namespace kind {other}"
            ))),
        }
    }
}

impl fmt::Display for NamespaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamespaceKind::Frozen => write!(f, "frozen"),
            NamespaceKind::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// Which storage backing a namespace's index arrays live in — the
/// wire twin of [`hoplite_core::StoreBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexBackend {
    /// Process-private heap (built in process or HOPL v1 load).
    Heap,
    /// One shared HOPL v3 arena (`Oracle::open`), page-cache-shared
    /// across replicas of the same file.
    Mapped,
}

impl IndexBackend {
    fn to_u8(self) -> u8 {
        match self {
            IndexBackend::Heap => 0,
            IndexBackend::Mapped => 1,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(IndexBackend::Heap),
            1 => Ok(IndexBackend::Mapped),
            other => Err(WireError::Malformed(format!(
                "unknown index backend {other}"
            ))),
        }
    }
}

impl From<hoplite_core::StoreBackend> for IndexBackend {
    fn from(b: hoplite_core::StoreBackend) -> Self {
        match b {
            hoplite_core::StoreBackend::Heap => IndexBackend::Heap,
            hoplite_core::StoreBackend::Mapped => IndexBackend::Mapped,
        }
    }
}

impl fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexBackend::Heap => write!(f, "heap"),
            IndexBackend::Mapped => write!(f, "mapped"),
        }
    }
}

/// Machine-readable refusal category carried by a `FAIL` reply
/// (protocol v6+). The code tells the client *what to do next* —
/// retry, back off, or give up — independent of the advisory text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame sat queued past [`request deadline`] and was dropped
    /// before consuming any kernel time. Not retryable as-is: by the
    /// time a retry lands the answer is just as stale, so the caller
    /// should shed the work or raise its deadline.
    ///
    /// [`request deadline`]: crate::ServerConfig::request_deadline
    DeadlineExceeded,
    /// Admission control shed the frame past the high-water mark.
    /// Retryable after the `retry_after_ms` hint.
    Overloaded,
    /// The server is up but not serving yet (WAL replay / startup in
    /// progress). Retryable after the `retry_after_ms` hint.
    NotReady,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::DeadlineExceeded => 1,
            ErrorCode::Overloaded => 2,
            ErrorCode::NotReady => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(ErrorCode::DeadlineExceeded),
            2 => Ok(ErrorCode::Overloaded),
            3 => Ok(ErrorCode::NotReady),
            other => Err(WireError::Malformed(format!("unknown error code {other}"))),
        }
    }

    /// May the request be retried later with a hope of success?
    pub fn retryable(self) -> bool {
        match self {
            ErrorCode::DeadlineExceeded => false,
            ErrorCode::Overloaded | ErrorCode::NotReady => true,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::DeadlineExceeded => write!(f, "DEADLINE_EXCEEDED"),
            ErrorCode::Overloaded => write!(f, "OVERLOADED"),
            ErrorCode::NotReady => write!(f, "NOT_READY"),
        }
    }
}

/// Per-namespace counters returned by `STATS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Frozen snapshot or dynamic oracle.
    pub kind: NamespaceKind,
    /// Vertices addressable by queries (original graph ids).
    pub vertices: u64,
    /// Hop-label entries of the underlying index.
    pub label_entries: u64,
    /// Dynamic only: inserted edges waiting in the overlay.
    pub pending_inserts: u64,
    /// Dynamic only: lazily deleted edges not yet folded out.
    pub pending_deletions: u64,
    /// Reachability queries served (batch pairs count individually).
    pub queries: u64,
    /// Frozen only: bytes spent on the per-vertex rank-band signatures.
    pub signature_bytes: u64,
    /// Frozen only: queries decided by the O(1) pre-filter stack.
    pub filter_hits: u64,
    /// Frozen only: queries rejected by the signature `AND`.
    pub signature_hits: u64,
    /// Frozen only: queries that ran the label-intersection kernel —
    /// the operator's "where do my queries die" denominator together
    /// with the two hit counters above.
    pub merge_runs: u64,
    /// Which backing the namespace's index arrays live in.
    pub backend: IndexBackend,
    /// Process-private heap bytes of the index (labels, signatures,
    /// filter records, component tables, DAG, overlay).
    pub heap_bytes: u64,
    /// Bytes addressed inside a shared mapped arena (a HOPL v3
    /// `Oracle::open`); these are page cache, shared across every
    /// replica and namespace serving the same file.
    pub mapped_bytes: u64,
    /// Dynamic + durable only: bytes in the current WAL generation
    /// (protocol v5+; zero when decoded from an older frame).
    pub wal_bytes: u64,
    /// Dynamic + durable only: mutations logged over the namespace's
    /// lifetime, monotonic across checkpoint rotations (v5+).
    pub wal_records: u64,
    /// Dynamic only: background rebuilds published (v5+).
    pub rebuilds: u64,
    /// Dynamic only: is a background rebuild running right now? (v5+).
    pub rebuild_in_flight: bool,
}

/// One `LIST` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamespaceInfo {
    /// Registry key.
    pub name: String,
    /// Frozen snapshot or dynamic oracle.
    pub kind: NamespaceKind,
}

/// Summary of one latency histogram inside a `METRICS` reply: the
/// sample count/sum plus the flight-recorder percentiles. Values are
/// whatever unit the histogram recorded (nanoseconds for every latency
/// series, frames for batch-size series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl From<&hoplite_core::HistogramSnapshot> for MetricsSummary {
    fn from(s: &hoplite_core::HistogramSnapshot) -> Self {
        MetricsSummary {
            count: s.count(),
            sum: s.sum(),
            p50: s.p50(),
            p90: s.p90(),
            p99: s.p99(),
            p999: s.p999(),
            max: s.max(),
        }
    }
}

/// The `METRICS` reply body: a named dump of the server's counters and
/// histogram summaries. Deliberately schemaless on the wire — names
/// are data, so the server can grow new series without another
/// protocol bump — and ordered, so expositions render deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` monotone counters / gauges.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` histogram series.
    pub histograms: Vec<(String, MetricsSummary)>,
}

impl MetricsReport {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The summary of histogram series `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&MetricsSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Does `u` reach `v` in namespace `ns`?
    Reach {
        /// Namespace name.
        ns: String,
        /// Source vertex (original id).
        u: u32,
        /// Target vertex (original id).
        v: u32,
    },
    /// Answer every pair, preserving order.
    Batch {
        /// Namespace name.
        ns: String,
        /// Query pairs (original ids).
        pairs: Vec<(u32, u32)>,
    },
    /// Insert an edge into a dynamic namespace.
    AddEdge {
        /// Namespace name.
        ns: String,
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// Remove an edge from a dynamic namespace.
    RemoveEdge {
        /// Namespace name.
        ns: String,
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// Per-namespace counters.
    Stats {
        /// Namespace name.
        ns: String,
    },
    /// Enumerate namespaces.
    List,
    /// Observability dump (protocol v4+): counters and latency
    /// histogram summaries. An empty `ns` asks for the server-wide
    /// report (reactor + every namespace); a name scopes the report to
    /// that namespace's series.
    Metrics {
        /// Namespace name, or empty for server-wide.
        ns: String,
    },
}

impl Request {
    /// Encodes into a frame payload (version + opcode + body).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Reach { ns, u, v } => {
                out.push(OP_REACH);
                put_name(&mut out, ns)?;
                put_u32(&mut out, *u);
                put_u32(&mut out, *v);
            }
            Request::Batch { ns, pairs } => {
                if pairs.len() as u64 > MAX_BATCH_PAIRS as u64 {
                    return Err(WireError::Malformed(format!(
                        "batch of {} pairs exceeds the {MAX_BATCH_PAIRS} limit",
                        pairs.len()
                    )));
                }
                out.push(OP_BATCH);
                put_name(&mut out, ns)?;
                put_u32(&mut out, pairs.len() as u32);
                for &(u, v) in pairs {
                    put_u32(&mut out, u);
                    put_u32(&mut out, v);
                }
            }
            Request::AddEdge { ns, u, v } => {
                out.push(OP_ADD_EDGE);
                put_name(&mut out, ns)?;
                put_u32(&mut out, *u);
                put_u32(&mut out, *v);
            }
            Request::RemoveEdge { ns, u, v } => {
                out.push(OP_REMOVE_EDGE);
                put_name(&mut out, ns)?;
                put_u32(&mut out, *u);
                put_u32(&mut out, *v);
            }
            Request::Stats { ns } => {
                out.push(OP_STATS);
                put_name(&mut out, ns)?;
            }
            Request::List => out.push(OP_LIST),
            Request::Metrics { ns } => {
                out.push(OP_METRICS);
                put_name(&mut out, ns)?;
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload, validating strictly. Accepts any
    /// version in [`PROTOCOL_VERSION_MIN`]`..=`[`PROTOCOL_VERSION`];
    /// callers that must echo the sender's version use
    /// [`Self::decode_with_version`].
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        Self::decode_with_version(payload).map(|(req, _)| req)
    }

    /// [`Self::decode`] that also returns the version byte the sender
    /// spoke — the server encodes its reply in that same version, so
    /// strict older-version clients keep parsing every answer.
    pub fn decode_with_version(payload: &[u8]) -> Result<(Request, u8), WireError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if !version_accepted(version) {
            return Err(WireError::Version(version));
        }
        let opcode = r.u8()?;
        let req = match opcode {
            OP_PING => Request::Ping,
            OP_REACH => {
                let ns = r.name()?;
                Request::Reach {
                    ns,
                    u: r.u32()?,
                    v: r.u32()?,
                }
            }
            OP_BATCH => {
                let ns = r.name()?;
                let k = r.u32()?;
                if k > MAX_BATCH_PAIRS {
                    return Err(WireError::Malformed(format!(
                        "batch of {k} pairs exceeds the {MAX_BATCH_PAIRS} limit"
                    )));
                }
                // Each pair is 8 body bytes; a count the body cannot
                // hold must not size an allocation.
                if k as usize > r.remaining() / 8 {
                    return Err(WireError::Malformed(format!(
                        "batch count {k} exceeds the frame body"
                    )));
                }
                let mut pairs = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    pairs.push((r.u32()?, r.u32()?));
                }
                Request::Batch { ns, pairs }
            }
            OP_ADD_EDGE => {
                let ns = r.name()?;
                Request::AddEdge {
                    ns,
                    u: r.u32()?,
                    v: r.u32()?,
                }
            }
            OP_REMOVE_EDGE => {
                let ns = r.name()?;
                Request::RemoveEdge {
                    ns,
                    u: r.u32()?,
                    v: r.u32()?,
                }
            }
            OP_STATS => Request::Stats { ns: r.name()? },
            OP_LIST => Request::List,
            // METRICS arrived in v4; to a v3 frame it is exactly an
            // unknown opcode, same as a v3-era server would have said.
            OP_METRICS if version >= 4 => Request::Metrics { ns: r.name()? },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok((req, version))
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// A decoded server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to `PING`.
    Pong,
    /// Reply to `REACH` / `ADD_EDGE` / `REMOVE_EDGE`.
    Bool(bool),
    /// Reply to `BATCH`, order-preserving.
    Bools(Vec<bool>),
    /// Reply to `STATS`.
    Stats(NamespaceStats),
    /// Reply to `LIST`.
    List(Vec<NamespaceInfo>),
    /// Reply to `METRICS` (protocol v4+).
    Metrics(MetricsReport),
    /// Any request can fail; the message is human-readable.
    Error(String),
    /// A coded refusal (protocol v6+): the overload-control layer's
    /// reply when a frame is shed, aged out, or arrives before the
    /// server is ready. `retry_after_ms` is an advisory backoff hint
    /// (zero when retrying is pointless). Encoded to a pre-v6 peer as
    /// a plain [`Response::Error`] with the code name prefixed.
    Fail {
        /// What kind of refusal this is.
        code: ErrorCode,
        /// Advisory "come back in this many milliseconds" hint.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// An `OVERLOADED` refusal with a retry-after hint.
    pub fn overloaded(retry_after_ms: u32, message: impl Into<String>) -> Response {
        Response::Fail {
            code: ErrorCode::Overloaded,
            retry_after_ms,
            message: message.into(),
        }
    }

    /// A `DEADLINE_EXCEEDED` refusal (no retry hint — a retry would be
    /// just as stale).
    pub fn deadline_exceeded(message: impl Into<String>) -> Response {
        Response::Fail {
            code: ErrorCode::DeadlineExceeded,
            retry_after_ms: 0,
            message: message.into(),
        }
    }

    /// A `NOT_READY` refusal with a retry-after hint.
    pub fn not_ready(retry_after_ms: u32, message: impl Into<String>) -> Response {
        Response::Fail {
            code: ErrorCode::NotReady,
            retry_after_ms,
            message: message.into(),
        }
    }

    /// Encodes into a frame payload (version + opcode + body) speaking
    /// the current [`PROTOCOL_VERSION`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Encodes speaking an explicit accepted `version` — the server's
    /// reply path, which echoes whatever version the request spoke so
    /// strict older-version decoders keep parsing.
    pub fn encode_versioned(&self, version: u8) -> Result<Vec<u8>, WireError> {
        if !version_accepted(version) {
            return Err(WireError::Version(version));
        }
        if version < 4 && matches!(self, Response::Metrics(_)) {
            return Err(WireError::Malformed(
                "METRICS reply requires protocol v4".into(),
            ));
        }
        let mut out = vec![version];
        match self {
            Response::Pong => out.push(RE_PONG),
            Response::Bool(b) => {
                out.push(RE_BOOL);
                out.push(*b as u8);
            }
            Response::Bools(bs) => {
                if bs.len() as u64 > MAX_BATCH_PAIRS as u64 {
                    return Err(WireError::Malformed(format!(
                        "answer batch of {} exceeds the {MAX_BATCH_PAIRS} limit",
                        bs.len()
                    )));
                }
                out.push(RE_BOOLS);
                pack_bools(&mut out, bs);
            }
            Response::Stats(s) => {
                out.push(RE_STATS);
                out.push(s.kind.to_u8());
                put_u64(&mut out, s.vertices);
                put_u64(&mut out, s.label_entries);
                put_u64(&mut out, s.pending_inserts);
                put_u64(&mut out, s.pending_deletions);
                put_u64(&mut out, s.queries);
                put_u64(&mut out, s.signature_bytes);
                put_u64(&mut out, s.filter_hits);
                put_u64(&mut out, s.signature_hits);
                put_u64(&mut out, s.merge_runs);
                out.push(s.backend.to_u8());
                put_u64(&mut out, s.heap_bytes);
                put_u64(&mut out, s.mapped_bytes);
                if version >= 5 {
                    put_u64(&mut out, s.wal_bytes);
                    put_u64(&mut out, s.wal_records);
                    put_u64(&mut out, s.rebuilds);
                    out.push(s.rebuild_in_flight as u8);
                }
            }
            Response::List(infos) => {
                out.push(RE_LIST);
                put_u32(&mut out, infos.len() as u32);
                for info in infos {
                    put_name(&mut out, &info.name)?;
                    out.push(info.kind.to_u8());
                }
            }
            Response::Metrics(m) => {
                out.push(RE_METRICS);
                put_u32(&mut out, m.counters.len() as u32);
                for (name, value) in &m.counters {
                    put_text(&mut out, name);
                    put_u64(&mut out, *value);
                }
                put_u32(&mut out, m.histograms.len() as u32);
                for (name, s) in &m.histograms {
                    put_text(&mut out, name);
                    for v in [s.count, s.sum, s.p50, s.p90, s.p99, s.p999, s.max] {
                        put_u64(&mut out, v);
                    }
                }
            }
            Response::Error(msg) => {
                out.push(RE_ERROR);
                put_text(&mut out, msg);
            }
            Response::Fail {
                code,
                retry_after_ms,
                message,
            } => {
                if version >= 6 {
                    out.push(RE_FAIL);
                    out.push(code.to_u8());
                    put_u32(&mut out, *retry_after_ms);
                    put_text(&mut out, message);
                } else {
                    // Pre-v6 peers get the refusal as a plain ERROR
                    // with the code name prefixed — still readable,
                    // still a refusal, just not machine-actionable.
                    out.push(RE_ERROR);
                    put_text(&mut out, &format!("{code}: {message}"));
                }
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload, validating strictly. Accepts any
    /// version in [`PROTOCOL_VERSION_MIN`]`..=`[`PROTOCOL_VERSION`].
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if !version_accepted(version) {
            return Err(WireError::Version(version));
        }
        let opcode = r.u8()?;
        let resp = match opcode {
            RE_PONG => Response::Pong,
            RE_BOOL => match r.u8()? {
                0 => Response::Bool(false),
                1 => Response::Bool(true),
                other => {
                    return Err(WireError::Malformed(format!("bool byte {other}")));
                }
            },
            RE_BOOLS => Response::Bools(unpack_bools(&mut r)?),
            RE_STATS => {
                let mut stats = NamespaceStats {
                    kind: NamespaceKind::from_u8(r.u8()?)?,
                    vertices: r.u64()?,
                    label_entries: r.u64()?,
                    pending_inserts: r.u64()?,
                    pending_deletions: r.u64()?,
                    queries: r.u64()?,
                    signature_bytes: r.u64()?,
                    filter_hits: r.u64()?,
                    signature_hits: r.u64()?,
                    merge_runs: r.u64()?,
                    backend: IndexBackend::from_u8(r.u8()?)?,
                    heap_bytes: r.u64()?,
                    mapped_bytes: r.u64()?,
                    wal_bytes: 0,
                    wal_records: 0,
                    rebuilds: 0,
                    rebuild_in_flight: false,
                };
                if version >= 5 {
                    stats.wal_bytes = r.u64()?;
                    stats.wal_records = r.u64()?;
                    stats.rebuilds = r.u64()?;
                    stats.rebuild_in_flight = match r.u8()? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(WireError::Malformed(format!(
                                "rebuild_in_flight byte {other}"
                            )));
                        }
                    };
                }
                Response::Stats(stats)
            }
            RE_LIST => {
                let k = r.u32()?;
                // Each entry is at least 2 body bytes (empty name +
                // kind); a count the body cannot hold must not size an
                // allocation.
                if k as usize > r.remaining() / 2 {
                    return Err(WireError::Malformed(format!(
                        "list count {k} exceeds the frame body"
                    )));
                }
                let mut infos = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    infos.push(NamespaceInfo {
                        name: r.name()?,
                        kind: NamespaceKind::from_u8(r.u8()?)?,
                    });
                }
                Response::List(infos)
            }
            RE_METRICS if version >= 4 => {
                let kc = r.u32()?;
                // Each counter is at least 10 body bytes (empty name +
                // u64); never size an allocation off a bogus count.
                if kc as usize > r.remaining() / 10 {
                    return Err(WireError::Malformed(format!(
                        "counter count {kc} exceeds the frame body"
                    )));
                }
                let mut counters = Vec::with_capacity(kc as usize);
                for _ in 0..kc {
                    counters.push((r.text()?, r.u64()?));
                }
                let kh = r.u32()?;
                // Each histogram is at least 58 body bytes.
                if kh as usize > r.remaining() / 58 {
                    return Err(WireError::Malformed(format!(
                        "histogram count {kh} exceeds the frame body"
                    )));
                }
                let mut histograms = Vec::with_capacity(kh as usize);
                for _ in 0..kh {
                    let name = r.text()?;
                    histograms.push((
                        name,
                        MetricsSummary {
                            count: r.u64()?,
                            sum: r.u64()?,
                            p50: r.u64()?,
                            p90: r.u64()?,
                            p99: r.u64()?,
                            p999: r.u64()?,
                            max: r.u64()?,
                        },
                    ));
                }
                Response::Metrics(MetricsReport {
                    counters,
                    histograms,
                })
            }
            RE_ERROR => Response::Error(r.text()?),
            // FAIL arrived in v6; to an older frame it is exactly an
            // unknown opcode, same as an older server would have said.
            RE_FAIL if version >= 6 => Response::Fail {
                code: ErrorCode::from_u8(r.u8()?)?,
                retry_after_ms: r.u32()?,
                message: r.text()?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode().unwrap();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode().unwrap();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::List);
        roundtrip_req(Request::Reach {
            ns: "web".into(),
            u: 0,
            v: u32::MAX,
        });
        roundtrip_req(Request::Batch {
            ns: "ønt/ology".into(),
            pairs: vec![(1, 2), (3, 4), (0, 0)],
        });
        roundtrip_req(Request::Batch {
            ns: String::new(),
            pairs: vec![],
        });
        roundtrip_req(Request::AddEdge {
            ns: "g".into(),
            u: 7,
            v: 9,
        });
        roundtrip_req(Request::RemoveEdge {
            ns: "g".into(),
            u: 9,
            v: 7,
        });
        roundtrip_req(Request::Stats { ns: "g".into() });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Bool(true));
        roundtrip_resp(Response::Bool(false));
        for k in [0usize, 1, 7, 8, 9, 64, 65] {
            let bs: Vec<bool> = (0..k).map(|i| i % 3 == 0).collect();
            roundtrip_resp(Response::Bools(bs));
        }
        roundtrip_resp(Response::Stats(NamespaceStats {
            kind: NamespaceKind::Dynamic,
            vertices: 10,
            label_entries: 99,
            pending_inserts: 3,
            pending_deletions: 1,
            queries: u64::MAX,
            signature_bytes: 160,
            filter_hits: 7,
            signature_hits: 5,
            merge_runs: 2,
            backend: IndexBackend::Mapped,
            heap_bytes: 4096,
            mapped_bytes: 1 << 30,
            wal_bytes: 17 * 42,
            wal_records: 42,
            rebuilds: 6,
            rebuild_in_flight: true,
        }));
        roundtrip_resp(Response::List(vec![
            NamespaceInfo {
                name: "a".into(),
                kind: NamespaceKind::Frozen,
            },
            NamespaceInfo {
                name: "b".into(),
                kind: NamespaceKind::Dynamic,
            },
        ]));
        roundtrip_resp(Response::Error("nope".into()));
        roundtrip_resp(Response::Fail {
            code: ErrorCode::Overloaded,
            retry_after_ms: 250,
            message: "shed".into(),
        });
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Request::Ping.encode().unwrap();
        bytes[0] = 9;
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Version(9))
        ));
        bytes[0] = PROTOCOL_VERSION_MIN - 1;
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Version(_))
        ));
    }

    #[test]
    fn metrics_report_roundtrips() {
        roundtrip_req(Request::Metrics { ns: String::new() });
        roundtrip_req(Request::Metrics { ns: "bench".into() });
        roundtrip_resp(Response::Metrics(MetricsReport::default()));
        let report = MetricsReport {
            counters: vec![
                ("server_frames_total".into(), 12_345),
                ("ns_queries_total{ns=\"g\"}".into(), u64::MAX),
            ],
            histograms: vec![(
                "ns_query_merge_ns{ns=\"g\"}".into(),
                MetricsSummary {
                    count: 100,
                    sum: 1_000_000,
                    p50: 9_000,
                    p90: 12_000,
                    p99: 48_000,
                    p999: 130_000,
                    max: 131_072,
                },
            )],
        };
        roundtrip_resp(Response::Metrics(report.clone()));
        assert_eq!(report.counter("server_frames_total"), Some(12_345));
        assert_eq!(report.counter("missing"), None);
        assert_eq!(
            report.histogram("ns_query_merge_ns{ns=\"g\"}").unwrap().p99,
            48_000
        );
    }

    /// The v3 compatibility window: a v3 frame of any pre-v4 opcode
    /// decodes (and reports its version), a v3 frame of the v4-only
    /// `METRICS` opcode is an unknown opcode, and replies encode in
    /// whatever accepted version the caller asks for.
    #[test]
    fn v3_frames_still_decode_and_replies_echo_their_version() {
        let mut reach = Request::Reach {
            ns: "g".into(),
            u: 1,
            v: 2,
        }
        .encode()
        .unwrap();
        assert_eq!(reach[0], PROTOCOL_VERSION);
        reach[0] = 3;
        let (req, version) = Request::decode_with_version(&reach).unwrap();
        assert_eq!(version, 3);
        assert!(matches!(req, Request::Reach { .. }));

        let mut metrics = Request::Metrics { ns: String::new() }.encode().unwrap();
        metrics[0] = 3;
        assert!(matches!(
            Request::decode(&metrics),
            Err(WireError::UnknownOpcode(OP_METRICS))
        ));

        let reply = Response::Bool(true).encode_versioned(3).unwrap();
        assert_eq!(reply[0], 3);
        assert_eq!(Response::decode(&reply).unwrap(), Response::Bool(true));
        assert!(matches!(
            Response::Bool(true).encode_versioned(2),
            Err(WireError::Version(2))
        ));
        // A METRICS reply cannot be spoken in v3.
        assert!(Response::Metrics(MetricsReport::default())
            .encode_versioned(3)
            .is_err());
        // A v3 RE_METRICS frame is an unknown opcode.
        assert!(matches!(
            Response::decode(&[3, RE_METRICS]),
            Err(WireError::UnknownOpcode(RE_METRICS))
        ));
    }

    /// The v5 STATS extension is version-gated: a v4 (or v3) frame
    /// carries the 13-field body bit-for-bit — strict older decoders
    /// keep parsing — and decodes with the durability fields zeroed,
    /// while a v5 frame roundtrips them.
    #[test]
    fn stats_durability_fields_are_version_gated() {
        let full = NamespaceStats {
            kind: NamespaceKind::Dynamic,
            vertices: 4,
            label_entries: 9,
            pending_inserts: 2,
            pending_deletions: 1,
            queries: 77,
            signature_bytes: 0,
            filter_hits: 0,
            signature_hits: 0,
            merge_runs: 0,
            backend: IndexBackend::Heap,
            heap_bytes: 512,
            mapped_bytes: 0,
            wal_bytes: 3 * 17,
            wal_records: 3,
            rebuilds: 1,
            rebuild_in_flight: true,
        };
        let v4 = Response::Stats(full).encode_versioned(4).unwrap();
        let v5 = Response::Stats(full).encode_versioned(5).unwrap();
        assert_eq!(v5.len(), v4.len() + 3 * 8 + 1);
        match Response::decode(&v4).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.queries, 77);
                assert_eq!(s.wal_bytes, 0);
                assert_eq!(s.wal_records, 0);
                assert_eq!(s.rebuilds, 0);
                assert!(!s.rebuild_in_flight);
            }
            other => panic!("got {other:?}"),
        }
        assert_eq!(Response::decode(&v5).unwrap(), Response::Stats(full));
    }

    /// The v6 FAIL extension is version-gated: a v6 frame roundtrips
    /// the code + retry hint, a v5 (or older) peer gets the refusal
    /// degraded to a plain ERROR with the code name prefixed — strict
    /// older decoders keep parsing — and a pre-v6 `RE_FAIL` frame is
    /// an unknown opcode, exactly what an older server would have said.
    #[test]
    fn fail_replies_are_version_gated() {
        let fail = Response::overloaded(250, "tick budget exhausted");
        let v6 = fail.encode_versioned(6).unwrap();
        assert_eq!(v6[0], 6);
        assert_eq!(Response::decode(&v6).unwrap(), fail);

        for old in [3u8, 4, 5] {
            let frame = fail.encode_versioned(old).unwrap();
            assert_eq!(frame[0], old);
            match Response::decode(&frame).unwrap() {
                Response::Error(m) => {
                    assert!(m.starts_with("OVERLOADED: "), "{m}");
                    assert!(m.contains("tick budget"), "{m}");
                }
                other => panic!("got {other:?}"),
            }
        }

        // A pre-v6 RE_FAIL frame is an unknown opcode.
        assert!(matches!(
            Response::decode(&[5, RE_FAIL, 2, 0, 0, 0, 0, 0, 0]),
            Err(WireError::UnknownOpcode(RE_FAIL))
        ));
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for (code, retryable) in [
            (ErrorCode::DeadlineExceeded, false),
            (ErrorCode::Overloaded, true),
            (ErrorCode::NotReady, true),
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()).unwrap(), code);
            assert_eq!(code.retryable(), retryable);
            roundtrip_resp(Response::Fail {
                code,
                retry_after_ms: 7,
                message: format!("{code} detail"),
            });
        }
        assert!(matches!(
            ErrorCode::from_u8(0),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            ErrorCode::from_u8(9),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn metrics_counts_larger_than_the_body_never_size_allocations() {
        let mut bytes = vec![PROTOCOL_VERSION, RE_METRICS];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        match Response::decode(&bytes) {
            Err(WireError::Malformed(m)) => assert!(m.contains("exceeds the frame body"), "{m}"),
            other => panic!("got {other:?}"),
        }
        let mut bytes = vec![PROTOCOL_VERSION, RE_METRICS];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        match Response::decode(&bytes) {
            Err(WireError::Malformed(m)) => assert!(m.contains("exceeds the frame body"), "{m}"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            Request::decode(&[PROTOCOL_VERSION, 0x55]),
            Err(WireError::UnknownOpcode(0x55))
        ));
        assert!(matches!(
            Response::decode(&[PROTOCOL_VERSION, 0x55]),
            Err(WireError::UnknownOpcode(0x55))
        ));
    }

    #[test]
    fn truncated_bodies_rejected() {
        let full = Request::Reach {
            ns: "web".into(),
            u: 1,
            v: 2,
        }
        .encode()
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn batch_count_must_match_body() {
        let mut bytes = vec![PROTOCOL_VERSION, 0x03];
        bytes.push(1);
        bytes.push(b'g');
        bytes.extend_from_slice(&5u32.to_le_bytes()); // claims 5 pairs
        bytes.extend_from_slice(&1u32.to_le_bytes()); // supplies half of one
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_batch_count_rejected_before_allocation() {
        let mut bytes = vec![PROTOCOL_VERSION, 0x03];
        bytes.push(1);
        bytes.push(b'g');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn counts_larger_than_the_body_never_size_allocations() {
        // BATCH claiming 1M pairs with an empty body.
        let mut bytes = vec![PROTOCOL_VERSION, 0x03, 1, b'g'];
        bytes.extend_from_slice(&MAX_BATCH_PAIRS.to_le_bytes());
        match Request::decode(&bytes) {
            Err(WireError::Malformed(m)) => assert!(m.contains("exceeds the frame body"), "{m}"),
            other => panic!("got {other:?}"),
        }
        // LIST reply claiming 8M entries with an empty body.
        let mut bytes = vec![PROTOCOL_VERSION, RE_LIST];
        bytes.extend_from_slice(&(8u32 << 20).to_le_bytes());
        match Response::decode(&bytes) {
            Err(WireError::Malformed(m)) => assert!(m.contains("exceeds the frame body"), "{m}"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_name_rejected() {
        let mut bytes = vec![PROTOCOL_VERSION, 0x06];
        bytes.push(2);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn nonzero_padding_bits_rejected() {
        let mut bytes = vec![PROTOCOL_VERSION, RE_BOOLS];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.push(0b1111_1111); // only 3 low bits may be set
        assert!(matches!(
            Response::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn long_error_messages_truncate_on_char_boundary() {
        let msg = "é".repeat(40_000); // 80 000 bytes of two-byte chars
        let resp = Response::Error(msg);
        let bytes = resp.encode().unwrap();
        match Response::decode(&bytes).unwrap() {
            Response::Error(m) => {
                assert!(m.len() <= u16::MAX as usize);
                assert!(m.chars().all(|c| c == 'é'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrip_and_limit() {
        let payload = Request::Ping.encode().unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cur = std::io::Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap(), payload);

        let mut big = Vec::new();
        big.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cur = std::io::Cursor::new(&big);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME_LEN),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn name_length_limit_enforced_on_encode() {
        let req = Request::Stats {
            ns: "x".repeat(MAX_NAME_LEN + 1),
        };
        assert!(req.encode().is_err());
    }

    #[test]
    fn accumulator_yields_frames_across_arbitrary_splits() {
        let payloads: Vec<Vec<u8>> = vec![
            Request::Ping.encode().unwrap(),
            Request::Reach {
                ns: "g".into(),
                u: 3,
                v: 9,
            }
            .encode()
            .unwrap(),
            vec![],
            Request::List.encode().unwrap(),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
            stream.extend_from_slice(p);
        }
        // Every split granularity from byte-at-a-time to one big write
        // must yield the identical frame sequence.
        for chunk in [1usize, 2, 3, 5, 7, stream.len()] {
            let mut acc = FrameAccumulator::new(MAX_FRAME_LEN);
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                acc.extend(piece);
                while let Some(frame) = acc.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert_eq!(acc.pending_bytes(), 0);
        }
    }

    #[test]
    fn accumulator_rejects_oversized_prefix_before_buffering_the_body() {
        let mut acc = FrameAccumulator::new(64);
        acc.extend(&100u32.to_le_bytes());
        assert!(matches!(
            acc.next_frame(),
            Err(WireError::FrameTooLarge { len: 100, max: 64 })
        ));
        // The error is sticky: the prefix is still pending, so the
        // caller sees it again until it closes the connection.
        assert!(acc.next_frame().is_err());
    }

    #[test]
    fn accumulator_compacts_consumed_prefix() {
        let payload = Request::Ping.encode().unwrap();
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        let mut acc = FrameAccumulator::new(MAX_FRAME_LEN);
        for round in 0..5_000 {
            acc.extend(&frame);
            assert_eq!(acc.next_frame().unwrap().unwrap(), payload, "{round}");
        }
        assert_eq!(acc.pending_bytes(), 0);
        // 5k frames of 6 bytes each passed through; the buffer must not
        // have accumulated them.
        assert!(acc.buf.len() < 4 * 4096, "buffer grew to {}", acc.buf.len());
    }

    #[test]
    fn fuzz_random_payloads_never_panic() {
        // Seeded LCG; decoding arbitrary garbage must return Err or a
        // valid message — never panic.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..2000 {
            let len = (next() % 64) as usize;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                payload.push(next() as u8);
            }
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
        }
    }
}
