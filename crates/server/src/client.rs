//! A blocking client for the hoplite wire protocol.
//!
//! One [`Client`] owns one TCP connection. The convenience methods
//! ([`Client::reach`], [`Client::reach_batch`], …) issue one request
//! at a time; the **pipelined** trio [`Client::send`] /
//! [`Client::flush`] / [`Client::recv`] puts N frames on the wire
//! before reading any reply. The server answers each connection's
//! frames in arrival order, so pipelined replies come back in send
//! order — and a reactor-mode server can coalesce the in-flight
//! frames of *many* pipelined clients into shared batch-kernel calls,
//! which is how the wire benchmarks reach kernel-level throughput.
//! Open more clients for concurrency across threads.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, MetricsReport, NamespaceInfo, NamespaceStats, Request, Response,
    WireError, MAX_FRAME_LEN,
};

/// Anything that can go wrong on the client side of a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The reply did not parse (or the request did not encode).
    Wire(WireError),
    /// The server replied with an `ERROR` frame; the message is the
    /// server's human-readable reason.
    Server(String),
    /// The server replied with the wrong response type for the request.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "client wire error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

/// A blocking connection to a hoplite server.
///
/// ```no_run
/// use hoplite_server::Client;
///
/// let mut client = Client::connect("127.0.0.1:7411")?;
/// client.ping()?;
/// if client.reach("web", 17, 4242)? {
///     println!("17 reaches 4242");
/// }
/// # Ok::<(), hoplite_server::ClientError>(())
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a hoplite server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        let reply = read_frame(&mut self.reader, MAX_FRAME_LEN)?;
        match Response::decode(&reply)? {
            Response::Error(message) => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("PONG")),
        }
    }

    /// Does `u` reach `v` in namespace `ns`?
    pub fn reach(&mut self, ns: &str, u: u32, v: u32) -> Result<bool, ClientError> {
        let request = Request::Reach {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(b) => Ok(b),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Answers every pair in order; the server fans frozen-namespace
    /// batches out over its worker threads.
    pub fn reach_batch(
        &mut self,
        ns: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, ClientError> {
        let request = Request::Batch {
            ns: ns.to_owned(),
            pairs: pairs.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::Bools(bs) if bs.len() == pairs.len() => Ok(bs),
            Response::Bools(_) => Err(ClientError::Unexpected("BOOLS of matching length")),
            _ => Err(ClientError::Unexpected("BOOLS")),
        }
    }

    /// Inserts `u → v` into a dynamic namespace.
    pub fn add_edge(&mut self, ns: &str, u: u32, v: u32) -> Result<(), ClientError> {
        let request = Request::AddEdge {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(_) => Ok(()),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Removes `u → v` from a dynamic namespace; `Ok(false)` means the
    /// edge did not exist.
    pub fn remove_edge(&mut self, ns: &str, u: u32, v: u32) -> Result<bool, ClientError> {
        let request = Request::RemoveEdge {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(b) => Ok(b),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Per-namespace counters.
    pub fn stats(&mut self, ns: &str) -> Result<NamespaceStats, ClientError> {
        let request = Request::Stats { ns: ns.to_owned() };
        match self.roundtrip(&request)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("STATS")),
        }
    }

    /// The server's metrics report (protocol v4): server-wide
    /// counters, serving-loop latency summaries, and per-namespace
    /// query-path series. Pass `""` for every namespace, or a name to
    /// restrict the per-namespace section.
    pub fn metrics(&mut self, ns: &str) -> Result<MetricsReport, ClientError> {
        let request = Request::Metrics { ns: ns.to_owned() };
        match self.roundtrip(&request)? {
            Response::Metrics(report) => Ok(report),
            _ => Err(ClientError::Unexpected("METRICS")),
        }
    }

    /// Every namespace the server exposes, sorted by name.
    pub fn list(&mut self) -> Result<Vec<NamespaceInfo>, ClientError> {
        match self.roundtrip(&Request::List)? {
            Response::List(infos) => Ok(infos),
            _ => Err(ClientError::Unexpected("LIST")),
        }
    }

    // ------------------------------------------------------------------
    // Pipelined mode
    // ------------------------------------------------------------------

    /// Queues one request frame into the write buffer without waiting
    /// for its reply. Call [`Client::flush`] to put the batch on the
    /// wire, then [`Client::recv`] exactly once per `send` — replies
    /// arrive in send order. Keep the pipeline depth bounded (dozens,
    /// not millions): replies you have not `recv`ed occupy socket and
    /// server buffers, and a reactor-mode server will stop reading
    /// from a connection whose unread replies exceed its backpressure
    /// budget.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.writer, &payload)?;
        Ok(())
    }

    /// Flushes every queued frame to the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next in-order reply for a pipelined [`Client::send`].
    /// An `ERROR` reply surfaces as [`ClientError::Server`] and
    /// consumes the reply slot — keep `recv`ing for the rest of the
    /// pipeline.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let reply = read_frame(&mut self.reader, MAX_FRAME_LEN)?;
        match Response::decode(&reply)? {
            Response::Error(message) => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Pipelined convenience: sends every pair as its own `REACH`
    /// frame, flushes once, then collects the replies in order —
    /// exactly the many-small-frames shape the reactor's coalescer
    /// turns into one deep batch call.
    ///
    /// ```no_run
    /// # use hoplite_server::Client;
    /// let mut client = Client::connect("127.0.0.1:7411")?;
    /// let answers = client.pipeline_reach("web", &[(0, 1), (1, 2), (2, 0)])?;
    /// assert_eq!(answers.len(), 3);
    /// # Ok::<(), hoplite_server::ClientError>(())
    /// ```
    pub fn pipeline_reach(
        &mut self,
        ns: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, ClientError> {
        for &(u, v) in pairs {
            self.send(&Request::Reach {
                ns: ns.to_owned(),
                u,
                v,
            })?;
        }
        self.flush()?;
        let mut answers = Vec::with_capacity(pairs.len());
        for _ in pairs {
            match self.recv()? {
                Response::Bool(b) => answers.push(b),
                _ => return Err(ClientError::Unexpected("BOOL")),
            }
        }
        Ok(answers)
    }
}
