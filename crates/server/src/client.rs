//! A blocking client for the hoplite wire protocol.
//!
//! One [`Client`] owns one TCP connection. The convenience methods
//! ([`Client::reach`], [`Client::reach_batch`], …) issue one request
//! at a time; the **pipelined** trio [`Client::send`] /
//! [`Client::flush`] / [`Client::recv`] puts N frames on the wire
//! before reading any reply. The server answers each connection's
//! frames in arrival order, so pipelined replies come back in send
//! order — and a reactor-mode server can coalesce the in-flight
//! frames of *many* pipelined clients into shared batch-kernel calls,
//! which is how the wire benchmarks reach kernel-level throughput.
//! Open more clients for concurrency across threads.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, MetricsReport, NamespaceInfo, NamespaceStats, Request,
    Response, WireError, MAX_FRAME_LEN,
};

/// Connection-robustness knobs for [`Client`] (and `loadgen`): how
/// long one dial may take, how long a blocked read/write may stall,
/// and how many *re*-dials a connect or [`Client::reconnect`] gets
/// before giving up. Re-dials back off exponentially (50 ms doubling
/// to a 2 s ceiling) with ±half jitter, so a thousand clients dropped
/// by one server restart do not stampede back in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Ceiling on one TCP dial. Zero means the OS default (a plain
    /// blocking `connect`).
    pub connect_timeout: Duration,
    /// Read/write timeout on the established socket; `None` blocks
    /// forever (the pre-hardening behavior).
    pub io_timeout: Option<Duration>,
    /// Extra attempts after the first, with jittered exponential
    /// backoff between them. `0` fails on the first refusal. Governs
    /// both re-dials of a failed connect *and* in-place re-issues of a
    /// request the server refused with a retryable `FAIL`
    /// (`OVERLOADED`/`NOT_READY`, protocol v6) — those waits honor the
    /// server's retry-after hint when it exceeds the backoff.
    pub retries: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: None,
            retries: 0,
        }
    }
}

impl ClientConfig {
    /// The restart-tolerant profile benchmarks and load generators
    /// use: bounded I/O stalls and enough backed-off re-dials to ride
    /// out a server restart (~6 s worst case) instead of dying on the
    /// first `ECONNRESET`.
    pub fn reconnecting() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            retries: 5,
        }
    }
}

/// The backoff before re-dial `attempt` (1-based): `50ms · 2^(a-1)`
/// capped at 2 s, then jittered to `[half, full)` using `seed`
/// (xorshift64*, distinct per client).
pub(crate) fn backoff_delay(attempt: u32, seed: &mut u64) -> Duration {
    let full = Duration::from_millis(50 << (attempt - 1).min(5)).min(Duration::from_secs(2));
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let r = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let half = full / 2;
    half + Duration::from_nanos(r % half.as_nanos().max(1) as u64)
}

/// Dials `addrs` (each gets `config.connect_timeout`), retrying the
/// whole list up to `config.retries` more times with jittered backoff.
pub(crate) fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
    let mut seed = addrs
        .first()
        .map(|a| a.port() as u64 + 1)
        .unwrap_or(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ std::process::id() as u64;
    let mut last: Option<io::Error> = None;
    for attempt in 0..=config.retries {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(attempt, &mut seed));
        }
        for addr in addrs {
            let dialed = if config.connect_timeout.is_zero() {
                TcpStream::connect(addr)
            } else {
                TcpStream::connect_timeout(addr, config.connect_timeout)
            };
            match dialed {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.io_timeout)?;
                    stream.set_write_timeout(config.io_timeout)?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "no socket address to dial")
    }))
}

/// Anything that can go wrong on the client side of a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The reply did not parse (or the request did not encode).
    Wire(WireError),
    /// The server replied with an `ERROR` frame; the message is the
    /// server's human-readable reason.
    Server(String),
    /// The server refused the request with a typed `FAIL` reply
    /// (protocol v6): shed under overload, aged past its deadline, or
    /// sent to a server still starting up. [`ClientError::is_retryable`]
    /// splits these into retry-worthy and terminal.
    Refused {
        code: ErrorCode,
        /// The server's hint: wait at least this long before retrying.
        /// Zero means no hint.
        retry_after: Duration,
        message: String,
    },
    /// The server replied with the wrong response type for the request.
    Unexpected(&'static str),
}

impl ClientError {
    /// May a retry reasonably succeed? Transport failures and
    /// `OVERLOADED`/`NOT_READY` refusals are retryable; a
    /// `DEADLINE_EXCEEDED` refusal, protocol breakage, and
    /// wrong-shape replies are terminal.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Refused { code, .. } => code.retryable(),
            _ => false,
        }
    }

    /// The server's retry-after hint, when the refusal carried one
    /// worth honoring.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Refused {
                code, retry_after, ..
            } if code.retryable() => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "client wire error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Refused { code, message, .. } => {
                write!(f, "server refused request: {code}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

/// A blocking connection to a hoplite server.
///
/// ```no_run
/// use hoplite_server::Client;
///
/// let mut client = Client::connect("127.0.0.1:7411")?;
/// client.ping()?;
/// if client.reach("web", 17, 4242)? {
///     println!("17 reaches 4242");
/// }
/// # Ok::<(), hoplite_server::ClientError>(())
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The resolved dial targets, kept for [`Client::reconnect`].
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    /// Jitter state for the backoff between refused-request retries.
    seed: u64,
}

impl Client {
    /// Connects to a hoplite server with the default (no-retry,
    /// no-io-timeout) [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout/retry behavior.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = dial(&addrs, &config)?;
        Self::from_stream(stream, addrs, config)
    }

    fn from_stream(
        stream: TcpStream,
        addrs: Vec<SocketAddr>,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let reader = BufReader::new(stream.try_clone()?);
        let seed = addrs
            .first()
            .map(|a| a.port() as u64 + 1)
            .unwrap_or(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ std::process::id() as u64;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            addrs,
            config,
            seed,
        })
    }

    /// Drops the broken socket and dials again under the same
    /// [`ClientConfig`] (its `retries` + jittered backoff apply). Any
    /// pipelined frames that were in flight are gone — the caller
    /// re-issues whatever it still cares about.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = dial(&self.addrs, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// One request → one reply, re-issuing the request (up to
    /// `config.retries` times) when the server sheds it with a
    /// retryable `FAIL`. Each wait is the larger of the jittered
    /// backoff and the server's retry-after hint — the hint is the
    /// server saying how long its overload is expected to last.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.roundtrip_once(request) {
                Err(e @ ClientError::Refused { .. })
                    if e.is_retryable() && attempt < self.config.retries =>
                {
                    attempt += 1;
                    let backoff = backoff_delay(attempt, &mut self.seed);
                    let wait = e.retry_after().map_or(backoff, |hint| backoff.max(hint));
                    std::thread::sleep(wait);
                }
                other => return other,
            }
        }
    }

    fn roundtrip_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        let reply = read_frame(&mut self.reader, MAX_FRAME_LEN)?;
        decode_reply(&reply)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("PONG")),
        }
    }

    /// Does `u` reach `v` in namespace `ns`?
    pub fn reach(&mut self, ns: &str, u: u32, v: u32) -> Result<bool, ClientError> {
        let request = Request::Reach {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(b) => Ok(b),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Answers every pair in order; the server fans frozen-namespace
    /// batches out over its worker threads.
    pub fn reach_batch(
        &mut self,
        ns: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, ClientError> {
        let request = Request::Batch {
            ns: ns.to_owned(),
            pairs: pairs.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::Bools(bs) if bs.len() == pairs.len() => Ok(bs),
            Response::Bools(_) => Err(ClientError::Unexpected("BOOLS of matching length")),
            _ => Err(ClientError::Unexpected("BOOLS")),
        }
    }

    /// Inserts `u → v` into a dynamic namespace.
    pub fn add_edge(&mut self, ns: &str, u: u32, v: u32) -> Result<(), ClientError> {
        let request = Request::AddEdge {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(_) => Ok(()),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Removes `u → v` from a dynamic namespace; `Ok(false)` means the
    /// edge did not exist.
    pub fn remove_edge(&mut self, ns: &str, u: u32, v: u32) -> Result<bool, ClientError> {
        let request = Request::RemoveEdge {
            ns: ns.to_owned(),
            u,
            v,
        };
        match self.roundtrip(&request)? {
            Response::Bool(b) => Ok(b),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Per-namespace counters.
    pub fn stats(&mut self, ns: &str) -> Result<NamespaceStats, ClientError> {
        let request = Request::Stats { ns: ns.to_owned() };
        match self.roundtrip(&request)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("STATS")),
        }
    }

    /// The server's metrics report (protocol v4): server-wide
    /// counters, serving-loop latency summaries, and per-namespace
    /// query-path series. Pass `""` for every namespace, or a name to
    /// restrict the per-namespace section.
    pub fn metrics(&mut self, ns: &str) -> Result<MetricsReport, ClientError> {
        let request = Request::Metrics { ns: ns.to_owned() };
        match self.roundtrip(&request)? {
            Response::Metrics(report) => Ok(report),
            _ => Err(ClientError::Unexpected("METRICS")),
        }
    }

    /// Every namespace the server exposes, sorted by name.
    pub fn list(&mut self) -> Result<Vec<NamespaceInfo>, ClientError> {
        match self.roundtrip(&Request::List)? {
            Response::List(infos) => Ok(infos),
            _ => Err(ClientError::Unexpected("LIST")),
        }
    }

    // ------------------------------------------------------------------
    // Pipelined mode
    // ------------------------------------------------------------------

    /// Queues one request frame into the write buffer without waiting
    /// for its reply. Call [`Client::flush`] to put the batch on the
    /// wire, then [`Client::recv`] exactly once per `send` — replies
    /// arrive in send order. Keep the pipeline depth bounded (dozens,
    /// not millions): replies you have not `recv`ed occupy socket and
    /// server buffers, and a reactor-mode server will stop reading
    /// from a connection whose unread replies exceed its backpressure
    /// budget.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.writer, &payload)?;
        Ok(())
    }

    /// Flushes every queued frame to the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next in-order reply for a pipelined [`Client::send`].
    /// An `ERROR` reply surfaces as [`ClientError::Server`], a `FAIL`
    /// as [`ClientError::Refused`]; both consume the reply slot — keep
    /// `recv`ing for the rest of the pipeline. Refused pipelined
    /// frames are *not* re-issued automatically (the pipeline's
    /// ordering contract belongs to the caller); check
    /// [`ClientError::is_retryable`] and re-send if worthwhile.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let reply = read_frame(&mut self.reader, MAX_FRAME_LEN)?;
        decode_reply(&reply)
    }

    /// Pipelined convenience: sends every pair as its own `REACH`
    /// frame, flushes once, then collects the replies in order —
    /// exactly the many-small-frames shape the reactor's coalescer
    /// turns into one deep batch call.
    ///
    /// ```no_run
    /// # use hoplite_server::Client;
    /// let mut client = Client::connect("127.0.0.1:7411")?;
    /// let answers = client.pipeline_reach("web", &[(0, 1), (1, 2), (2, 0)])?;
    /// assert_eq!(answers.len(), 3);
    /// # Ok::<(), hoplite_server::ClientError>(())
    /// ```
    pub fn pipeline_reach(
        &mut self,
        ns: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, ClientError> {
        for &(u, v) in pairs {
            self.send(&Request::Reach {
                ns: ns.to_owned(),
                u,
                v,
            })?;
        }
        self.flush()?;
        let mut answers = Vec::with_capacity(pairs.len());
        for _ in pairs {
            match self.recv()? {
                Response::Bool(b) => answers.push(b),
                _ => return Err(ClientError::Unexpected("BOOL")),
            }
        }
        Ok(answers)
    }
}

/// Splits a decoded reply into the success surface and the two error
/// shapes: legacy free-text `ERROR` and typed v6 `FAIL`.
fn decode_reply(reply: &[u8]) -> Result<Response, ClientError> {
    match Response::decode(reply)? {
        Response::Error(message) => Err(ClientError::Server(message)),
        Response::Fail {
            code,
            retry_after_ms,
            message,
        } => Err(ClientError::Refused {
            code,
            retry_after: Duration::from_millis(retry_after_ms as u64),
            message,
        }),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let mut seed = 0x5EED;
        for attempt in 1..=10u32 {
            let full =
                Duration::from_millis(50 << (attempt - 1).min(5)).min(Duration::from_secs(2));
            for _ in 0..100 {
                let d = backoff_delay(attempt, &mut seed);
                assert!(d >= full / 2, "attempt {attempt}: {d:?} under half");
                assert!(d < full, "attempt {attempt}: {d:?} at/over full");
            }
        }
        // Distinct seeds must not march in lockstep.
        let (mut a, mut b) = (1u64, 2u64);
        assert_ne!(backoff_delay(3, &mut a), backoff_delay(3, &mut b));
    }

    #[test]
    fn dial_gives_up_after_bounded_retries() {
        // A listener we immediately drop: the port is (almost
        // certainly) dead by the time we dial it.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(200),
            io_timeout: None,
            retries: 1,
        };
        let started = std::time::Instant::now();
        assert!(dial(&[dead], &config).is_err());
        // One retry = one backoff sleep (≤ 50 ms) + two fast refusals.
        assert!(started.elapsed() < Duration::from_secs(3));
        assert!(dial(&[], &config).is_err(), "empty address list");
    }

    /// A scripted one-connection server: answers each incoming frame
    /// with the next canned response, then holds the socket open.
    fn scripted_server(replies: Vec<Response>) -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for response in replies {
                let _ = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
                let payload = response
                    .encode_versioned(crate::protocol::PROTOCOL_VERSION)
                    .unwrap();
                write_frame(&mut stream, &payload).unwrap();
                stream.flush().unwrap();
            }
            // Hold the connection until the peer hangs up.
            let mut sink = [0u8; 64];
            while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
        });
        addr
    }

    #[test]
    fn fail_replies_surface_as_typed_errors() {
        let addr = scripted_server(vec![
            Response::overloaded(250, "shed"),
            Response::deadline_exceeded("too slow"),
            Response::not_ready(100, "loading"),
        ]);
        let mut client = Client::connect(addr).expect("connect");

        let overloaded = client.reach("g", 0, 1).unwrap_err();
        assert!(
            matches!(
                &overloaded,
                ClientError::Refused {
                    code: ErrorCode::Overloaded,
                    ..
                }
            ),
            "got {overloaded:?}"
        );
        assert!(overloaded.is_retryable());
        assert_eq!(
            overloaded.retry_after(),
            Some(Duration::from_millis(250)),
            "the hint must survive the trip"
        );

        let expired = client.reach("g", 0, 1).unwrap_err();
        assert!(matches!(
            &expired,
            ClientError::Refused {
                code: ErrorCode::DeadlineExceeded,
                ..
            }
        ));
        assert!(!expired.is_retryable(), "deadline exhaustion is terminal");
        assert_eq!(expired.retry_after(), None);

        let warming = client.reach("g", 0, 1).unwrap_err();
        assert!(warming.is_retryable());
        assert!(format!("{warming}").contains("NOT_READY"));
    }

    #[test]
    fn retryable_refusals_are_reissued_and_honor_the_hint() {
        let addr = scripted_server(vec![
            Response::overloaded(75, "shed, come back"),
            Response::Bool(true),
        ]);
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                connect_timeout: Duration::from_secs(2),
                io_timeout: Some(Duration::from_secs(5)),
                retries: 2,
            },
        )
        .expect("connect");
        let started = std::time::Instant::now();
        assert!(
            client.reach("g", 0, 1).expect("second attempt succeeds"),
            "the re-issued request's real answer comes through"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(75),
            "the wait honors the server's 75ms retry-after hint"
        );
    }

    #[test]
    fn reconnect_survives_a_dropped_connection() {
        use crate::{Registry, Server, ServerConfig};
        use hoplite_core::Oracle;
        use hoplite_graph::DiGraph;
        use std::sync::Arc;

        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let registry = Arc::new(Registry::new());
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let handle = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let addr = handle.local_addr();

        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                connect_timeout: Duration::from_secs(2),
                io_timeout: Some(Duration::from_secs(5)),
                retries: 2,
            },
        )
        .expect("connect");
        assert!(client.reach("g", 0, 2).unwrap());
        // Sever the transport from our side; the next roundtrip on the
        // old socket cannot work, but a reconnect must.
        client
            .writer
            .get_ref()
            .shutdown(std::net::Shutdown::Both)
            .unwrap();
        assert!(client.ping().is_err(), "dead socket must error");
        client.reconnect().expect("reconnect");
        assert!(client.reach("g", 0, 2).unwrap());
        handle.shutdown();
    }
}
