//! A many-connection wire load generator.
//!
//! Driving 10k sockets with 10k blocking client threads would
//! benchmark the OS scheduler, not the server. This module drives `C`
//! connections from `W` worker threads instead: each worker owns a
//! disjoint slice of connections and runs rounds of *pipelined* load —
//! queue `depth` frames on every connection, flush, then collect every
//! reply in order. At any instant a worker's whole slice has frames in
//! flight, which is exactly the traffic shape the reactor's
//! cross-connection coalescer feeds on, and replies are small (≤ 9
//! bytes for `BOOL`) so a bounded depth can never deadlock against
//! socket buffers.
//!
//! Both `hoplited bench` and the `paper perf` wire stage use this one
//! implementation, so the committed BENCH numbers and the ad-hoc CLI
//! measure the same thing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hoplite_core::HistogramSnapshot;

use crate::client::{dial, ClientConfig, ClientError};
use crate::protocol::{ErrorCode, FrameAccumulator, Request, Response, MAX_FRAME_LEN};

/// What load to offer; see [`run_load`].
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Server to connect to.
    pub addr: SocketAddr,
    /// Namespace every query targets.
    pub ns: String,
    /// Vertex-id space to draw random pairs from (`0..vertices`).
    pub vertices: u32,
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Worker threads driving those connections (clamped to
    /// `connections`).
    pub threads: usize,
    /// Frames in flight per connection within a round.
    pub pipeline_depth: usize,
    /// Pairs per frame: 1 sends single `REACH` frames (the coalescer's
    /// favorite food); > 1 sends `BATCH` frames of this size.
    pub batch: usize,
    /// Total reachability queries to issue (rounded up to fill whole
    /// rounds).
    pub queries: u64,
    /// Seed for the deterministic query-pair stream.
    pub seed: u64,
}

/// What [`run_load`] measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Connections actually opened.
    pub connections: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Reachability queries answered (pairs, not frames).
    pub queries: u64,
    /// Frames that came back as wire-level `ERROR` replies.
    pub errors: u64,
    /// Queries the server shed with a typed `OVERLOADED` reply
    /// (pairs, same unit as `queries` — a shed `BATCH` frame counts
    /// its whole batch).
    pub shed: u64,
    /// Queries refused with a typed `DEADLINE_EXCEEDED` reply (pairs).
    pub deadline_exceeded: u64,
    /// `true` answers observed (a cheap checksum against a ground
    /// truth run of the same seed).
    pub positives: u64,
    /// Wall time of the query phase (connection setup excluded).
    pub elapsed: Duration,
    /// Per-reply wire latency (nanoseconds, measured from a
    /// connection's pipelined send to each of its replies arriving),
    /// merged across every worker — **accepted** replies only, so
    /// overload percentiles describe the service the admitted traffic
    /// got, not the speed of the refusals. The same histogram type the
    /// server records with, so client- and server-side percentiles
    /// compare directly.
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Queries per second over the measured phase — *accepted* queries
    /// only, i.e. goodput under overload.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.queries as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of offered queries the server refused (shed +
    /// deadline-expired) rather than answered.
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.queries + self.shed + self.deadline_exceeded;
        if offered == 0 {
            return 0.0;
        }
        (self.shed + self.deadline_exceeded) as f64 / offered as f64
    }
}

/// SplitMix64: deterministic, seekable pair stream shared by every
/// worker without coordination.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The `i`-th query pair of the stream for `seed`.
pub fn pair_at(seed: u64, i: u64, vertices: u32) -> (u32, u32) {
    let r = mix(seed ^ mix(i));
    let u = (r as u32) % vertices.max(1);
    let v = ((r >> 32) as u32) % vertices.max(1);
    (u, v)
}

/// One benchmark socket. Exactly **one** fd per connection — a
/// `BufReader`/`BufWriter` split over `try_clone` would double the fd
/// cost and halve the largest sweep a given `ulimit -n` allows — with
/// a [`FrameAccumulator`] standing in for read buffering.
struct WireConn {
    stream: TcpStream,
    acc: FrameAccumulator,
}

impl WireConn {
    /// Blocking read of the next whole reply frame.
    fn next_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self.acc.next_frame().map_err(ClientError::from)? {
                return Ok(frame);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "reply stream closed mid-pipeline",
                    )))
                }
                Ok(k) => self.acc.extend(&buf[..k]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// Dials one benchmark socket under the restart-tolerant
/// [`ClientConfig::reconnecting`] policy (bounded dial/IO timeouts,
/// jittered exponential re-dials) — so a server restart mid-sweep
/// costs a reconnect, not the whole run.
fn connect(addr: SocketAddr, config: &ClientConfig) -> Result<WireConn, ClientError> {
    let stream = dial(&[addr], config)?;
    Ok(WireConn {
        stream,
        acc: FrameAccumulator::new(MAX_FRAME_LEN),
    })
}

/// Opens `spec.connections` sockets, drives `spec.queries` pipelined
/// queries through them, and reports throughput. Connection setup is
/// excluded from the timed phase. Fails fast if any connection cannot
/// be established — an fd-limit refusal should fail the benchmark, not
/// silently shrink it.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, ClientError> {
    let connections = spec.connections.max(1);
    let threads = spec.threads.clamp(1, connections);
    let depth = spec.pipeline_depth.max(1);
    let batch = spec.batch.max(1);

    // Partition connections across workers as evenly as possible.
    let mut slices: Vec<usize> = vec![connections / threads; threads];
    for slice in slices.iter_mut().take(connections % threads) {
        *slice += 1;
    }

    // Every connection sends `depth` frames of `batch` pairs per
    // round; run enough rounds to cover the requested query count.
    let per_round = (connections * depth * batch) as u64;
    let rounds = spec.queries.div_ceil(per_round).max(1);

    // Open every socket up front (the "sustains C concurrent sockets"
    // part of the measurement) before the clock starts.
    let config = ClientConfig::reconnecting();
    let mut conns: Vec<Vec<WireConn>> = Vec::with_capacity(threads);
    for slice in &slices {
        let mut owned = Vec::with_capacity(*slice);
        for _ in 0..*slice {
            owned.push(connect(spec.addr, &config)?);
        }
        conns.push(owned);
    }

    let started = Instant::now();
    let results: Vec<Result<WorkerTotals, ClientError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (worker, owned) in conns.into_iter().enumerate() {
            let spec = &*spec;
            handles.push(
                scope.spawn(move || worker_loop(owned, spec, worker as u64, rounds, depth, batch)),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });

    let elapsed = started.elapsed();
    let mut queries = 0;
    let mut errors = 0;
    let mut shed = 0;
    let mut deadline_exceeded = 0;
    let mut positives = 0;
    let mut latency = HistogramSnapshot::empty();
    for result in results {
        let totals = result?;
        queries += totals.queries;
        errors += totals.errors;
        shed += totals.shed;
        deadline_exceeded += totals.deadline_exceeded;
        positives += totals.positives;
        latency.merge(&totals.latency);
    }
    Ok(LoadReport {
        connections,
        threads,
        queries,
        errors,
        shed,
        deadline_exceeded,
        positives,
        elapsed,
        latency,
    })
}

/// One worker's accumulated results.
struct WorkerTotals {
    queries: u64,
    errors: u64,
    shed: u64,
    deadline_exceeded: u64,
    positives: u64,
    latency: HistogramSnapshot,
}

/// One worker's rounds over its connection slice.
fn worker_loop(
    mut conns: Vec<WireConn>,
    spec: &LoadSpec,
    worker: u64,
    rounds: u64,
    depth: usize,
    batch: usize,
) -> Result<WorkerTotals, ClientError> {
    let config = ClientConfig::reconnecting();
    let mut queries = 0u64;
    let mut errors = 0u64;
    let mut shed = 0u64;
    let mut deadline_exceeded = 0u64;
    let mut positives = 0u64;
    let mut latency = HistogramSnapshot::empty();
    // Each connection's send-phase flush instant; replies measure
    // against it, so a reply's latency covers server queueing and its
    // position in the pipeline — what a real pipelined client feels.
    let mut sent_at: Vec<Instant> = vec![Instant::now(); conns.len()];
    // Disjoint per-worker region of the shared pair stream.
    let mut next_pair = worker << 40;

    let mut wbuf: Vec<u8> = Vec::with_capacity(depth * 64);
    for _round in 0..rounds {
        // Send phase: every connection gets `depth` frames in one
        // write — so the whole slice has frames in flight at once.
        for (c, conn) in conns.iter_mut().enumerate() {
            wbuf.clear();
            for _ in 0..depth {
                let pairs: Vec<(u32, u32)> = (0..batch)
                    .map(|_| {
                        let p = pair_at(spec.seed, next_pair, spec.vertices);
                        next_pair += 1;
                        p
                    })
                    .collect();
                let request = if batch == 1 {
                    Request::Reach {
                        ns: spec.ns.clone(),
                        u: pairs[0].0,
                        v: pairs[0].1,
                    }
                } else {
                    Request::Batch {
                        ns: spec.ns.clone(),
                        pairs,
                    }
                };
                let payload = request.encode()?;
                wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                wbuf.extend_from_slice(&payload);
            }
            if let Err(e) = conn.stream.write_all(&wbuf) {
                // The server may have restarted under us: re-dial
                // (bounded + jittered) and re-send this round's frames
                // once; a second failure is fatal.
                crate::log_warn!("loadgen", "send failed ({e}); reconnecting");
                *conn = connect(spec.addr, &config)?;
                conn.stream.write_all(&wbuf)?;
            }
            sent_at[c] = Instant::now();
        }
        // Collect phase: replies come back in send order per
        // connection. A connection dying mid-collect forfeits its
        // outstanding replies (counted as errors) and reconnects for
        // the next round.
        for (c, conn) in conns.iter_mut().enumerate() {
            let mut got = 0usize;
            while got < depth {
                let reply = match conn.next_frame() {
                    Ok(reply) => reply,
                    Err(ClientError::Io(e)) => {
                        crate::log_warn!(
                            "loadgen",
                            "reply stream died ({e}); dropping {} in-flight frame(s) \
                             and reconnecting",
                            depth - got
                        );
                        errors += (depth - got) as u64;
                        *conn = connect(spec.addr, &config)?;
                        break;
                    }
                    Err(e) => return Err(e),
                };
                got += 1;
                match Response::decode(&reply)? {
                    Response::Bool(b) => {
                        latency.record(sent_at[c].elapsed().as_nanos() as u64);
                        queries += 1;
                        positives += b as u64;
                    }
                    Response::Bools(bs) => {
                        latency.record(sent_at[c].elapsed().as_nanos() as u64);
                        queries += bs.len() as u64;
                        positives += bs.iter().filter(|&&b| b).count() as u64;
                    }
                    // Typed refusals are the overload machinery doing
                    // its job — tally them in pairs so shed fractions
                    // compare directly against `queries`.
                    Response::Fail {
                        code: ErrorCode::Overloaded,
                        ..
                    } => shed += batch as u64,
                    Response::Fail {
                        code: ErrorCode::DeadlineExceeded,
                        ..
                    } => deadline_exceeded += batch as u64,
                    Response::Error(_) | Response::Fail { .. } => errors += 1,
                    _ => errors += 1,
                }
            }
        }
    }
    Ok(WorkerTotals {
        queries,
        errors,
        shed,
        deadline_exceeded,
        positives,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_stream_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let (u, v) = pair_at(42, i, 100);
            assert!(u < 100 && v < 100);
            assert_eq!((u, v), pair_at(42, i, 100));
        }
        assert_ne!(pair_at(42, 0, 1000), pair_at(43, 0, 1000));
    }

    #[test]
    fn load_report_qps_math() {
        let report = LoadReport {
            connections: 4,
            threads: 2,
            queries: 1000,
            errors: 0,
            shed: 0,
            deadline_exceeded: 0,
            positives: 10,
            elapsed: Duration::from_millis(500),
            latency: HistogramSnapshot::empty(),
        };
        assert!((report.qps() - 2000.0).abs() < 1e-9);
        assert_eq!(report.shed_fraction(), 0.0);
        let shed = LoadReport {
            shed: 200,
            deadline_exceeded: 50,
            ..report
        };
        assert!((shed.shed_fraction() - 0.2).abs() < 1e-9);
    }
}
