//! # hoplite-server
//!
//! A dependency-free (std-only: `std::net` + `std::thread`) TCP query
//! service over hoplite's reachability oracles — the serving tier the
//! paper's introduction motivates: reachability as a high-QPS
//! primitive inside social-network, ontology, and web services.
//!
//! [`hoplite_core::persist`] frames the deployment story as "build
//! once, ship the index to query-serving replicas"; this crate *is*
//! that replica. A [`Registry`] holds many named graphs at once —
//! frozen [`hoplite_core::Oracle`] snapshots (loaded from `HOPL` files
//! or built at startup) and mutable [`hoplite_core::DynamicOracle`]
//! namespaces — and a [`Server`] (per-connection thread pool, or an
//! epoll/kqueue reactor via [`ServeMode::Reactor`] that multiplexes
//! 10k+ sockets on one thread and coalesces queries across them)
//! answers the length-prefixed binary protocol of [`protocol`]:
//! `PING`, `REACH`, `BATCH`,
//! `ADD_EDGE`, `REMOVE_EDGE`, `STATS`, `LIST`. Frozen labels are
//! immutable, so the query fast path takes no lock; `REACH` and
//! `BATCH` run the [`hoplite_core::QueryFilters`] O(1) pre-filter
//! stack before any label intersection, and `BATCH` fans out through
//! [`hoplite_core::parallel::par_query_batch_mapped`] exactly like
//! the in-process [`hoplite_core::Oracle::reaches_batch`] API.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use hoplite_core::Oracle;
//! use hoplite_graph::DiGraph;
//! use hoplite_server::{Client, Registry, Server, ServerConfig};
//!
//! // Build (or `Oracle::load`) an index and register it.
//! let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
//! let registry = Arc::new(Registry::new());
//! registry.insert_frozen("web", Oracle::new(&g)).unwrap();
//!
//! // Serve it on an ephemeral loopback port.
//! let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
//!
//! // Query over the wire.
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! assert!(client.reach("web", 0, 3).unwrap());
//! assert_eq!(client.reach_batch("web", &[(3, 0), (1, 0)]).unwrap(), [false, true]);
//! server.shutdown();
//! ```
//!
//! The `hoplited` binary wraps all of this as a daemon: `hoplited
//! serve` loads graphs/indexes from files, `hoplited bench` measures
//! wire-level QPS, `hoplited smoke` is a self-contained CI check.

pub mod client;
pub mod loadgen;
pub mod obs;
pub mod pool;
pub mod protocol;
#[cfg(unix)]
mod reactor;
pub mod registry;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use loadgen::{LoadReport, LoadSpec};
pub use obs::{LogLevel, QueryObs, ServerObs, SlowLog, SlowQuery};
pub use pool::ThreadPool;
pub use protocol::{
    ErrorCode, FrameAccumulator, IndexBackend, MetricsReport, MetricsSummary, NamespaceInfo,
    NamespaceKind, NamespaceStats, Request, Response, WireError, MAX_BATCH_PAIRS, MAX_FRAME_LEN,
    MAX_NAME_LEN, PROTOCOL_VERSION, PROTOCOL_VERSION_MIN,
};
pub use registry::{NamespaceHandle, Registry, ServeError};
pub use server::{ServeMode, Server, ServerConfig, ServerHandle};
