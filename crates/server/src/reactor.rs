//! The event-driven serving loop: one epoll/kqueue reactor thread
//! multiplexing every connection, with cross-connection batch
//! coalescing.
//!
//! The thread-pool server ([`crate::server`]) pins one OS thread per
//! connection, so concurrency is capped at the worker count and
//! over-capacity clients are refused. The reactor inverts that: a
//! single thread owns *all* sockets through an OS readiness queue
//! (`epoll(7)` on Linux, `kqueue(2)` on the BSDs/macOS — declared as a
//! std-only `extern "C"` shim, the same pattern as the
//! `hoplite_core::store` mmap shim), so 10k mostly-idle connections
//! cost file descriptors and buffer bytes, not threads, and nobody is
//! ever refused below the fd limit.
//!
//! Per tick the reactor:
//!
//! 1. drains readiness events — accepting new sockets, pulling
//!    whatever bytes each readable connection has (a
//!    [`FrameAccumulator`] tolerates half frames; a slow client can
//!    trickle one byte per tick without desynchronizing framing), and
//!    flushing writable connections' buffered replies;
//! 2. decodes the complete frames. `PING`/`LIST`/`STATS`/mutations and
//!    malformed payloads are answered inline; `REACH`/`BATCH` against
//!    **frozen** namespaces are *coalesced* — their pairs from every
//!    connection are gathered into one shared batch per namespace;
//! 3. runs each namespace's gathered batch through one
//!    [`NamespaceHandle::reach_batch`] call (i.e.
//!    `hoplite_core::parallel::par_query_batch_mapped` at the
//!    configured fan-out), so the prefetch-pipelined adaptive kernel
//!    sees deep batches even when every client sends one-pair frames;
//! 4. scatters the answers back, encoding each connection's replies
//!    **in its own request order** (the protocol guarantee; across
//!    connections replies may complete in any order), then writes as
//!    much as each socket accepts. Unwritten bytes stay in a
//!    per-connection buffer; a connection whose buffered replies
//!    exceed [`ServerConfig::write_backpressure`] stops being *read*
//!    until the peer drains — backpressure instead of unbounded
//!    memory.
//!
//! Shutdown is a graceful drain: stop accepting, answer everything
//! already decoded, briefly flush buffered replies, close.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::obs::ServerObs;
use crate::protocol::{FrameAccumulator, Request, Response, MAX_BATCH_PAIRS};
use crate::registry::{NamespaceHandle, Registry, ServeError};
use crate::server::{salvage_version, ServerConfig, ServerCounters};

pub(crate) mod sys;

/// The listener's token; connection tokens are slab `index | gen<<32`
/// and an index never reaches `u32::MAX`.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Read-chunk size per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// How often the hygiene sweep walks the slab looking for idle and
/// slow-loris connections. Coarse on purpose: the timeouts it enforces
/// are seconds-scale, so a half-second resolution costs nothing while
/// keeping the per-tick overhead at zero for busy reactors.
const SWEEP_INTERVAL: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------
// Connection slab
// ---------------------------------------------------------------------

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Incremental frame parser over whatever bytes have arrived.
    acc: FrameAccumulator,
    /// Encoded-but-unwritten reply bytes; `out_pos` marks the
    /// already-written prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` flushes (EOF seen, or framing broke).
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
    /// When the write-backpressure threshold was crossed (reads
    /// paused); `None` while flowing. Feeds the stall metrics.
    stalled_since: Option<Instant>,
    /// Last time bytes arrived (or the connection was accepted); the
    /// idle-reaping clock.
    last_activity: Instant,
    /// When the accumulator first held a half frame that has not since
    /// completed; the slow-loris clock. `None` while frame-aligned.
    partial_since: Option<Instant>,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Generation-stamped connection storage: tokens from a previous
/// occupant of a slot never resolve, so a reply can never be scattered
/// to a connection that closed (and whose fd was reused) mid-tick.
struct Slab {
    entries: Vec<(u32, Option<Conn>)>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            entry.1 = Some(conn);
            token(index, entry.0)
        } else {
            let index = self.entries.len() as u32;
            self.entries.push((0, Some(conn)));
            token(index, 0)
        }
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (index, gen) = untoken(token);
        match self.entries.get_mut(index as usize) {
            Some((g, slot)) if *g == gen => slot.as_mut(),
            _ => None,
        }
    }

    /// Removes and returns the connection; bumps the generation so the
    /// token (and any copy of it in this tick's slots) goes stale.
    fn remove(&mut self, token: u64) -> Option<Conn> {
        let (index, gen) = untoken(token);
        match self.entries.get_mut(index as usize) {
            Some((g, slot)) if *g == gen && slot.is_some() => {
                *g = g.wrapping_add(1);
                self.free.push(index);
                self.live -= 1;
                slot.take()
            }
            _ => None,
        }
    }

    fn drain_live(&mut self) -> impl Iterator<Item = Conn> + '_ {
        self.live = 0;
        self.entries.iter_mut().filter_map(|(_, slot)| slot.take())
    }
}

fn token(index: u32, gen: u32) -> u64 {
    index as u64 | (gen as u64) << 32
}

fn untoken(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

// ---------------------------------------------------------------------
// Per-tick coalescing state
// ---------------------------------------------------------------------

/// Where one coalesced frame's answers live in its namespace's shared
/// pair vector, and what reply shape it expects.
struct Target {
    slot: usize,
    start: usize,
    len: usize,
    /// `BATCH` (bit-packed `BOOLS`) vs single `REACH` (`BOOL`).
    batch: bool,
}

/// One frozen namespace's gathered queries for this tick.
struct Job {
    handle: NamespaceHandle,
    pairs: Vec<(u32, u32)>,
    targets: Vec<Target>,
}

/// One decoded frame awaiting its reply: where it came from, which
/// protocol dialect the reply must speak, and when its bytes arrived
/// (the deadline clock, and the accept→reply latency histogram).
struct Slot {
    token: u64,
    version: u8,
    arrived: Instant,
    response: Option<Response>,
}

/// Everything decoded this tick: per-connection replies are emitted in
/// `slots` order, which is arrival order, so pipelined clients read
/// replies in the order they sent requests.
#[derive(Default)]
struct Tick {
    slots: Vec<Slot>,
    jobs: HashMap<String, Job>,
    /// Connections touched this tick (deduplicated coarsely); flushed
    /// and swept after scatter.
    dirty: Vec<u64>,
}

impl Tick {
    fn push_dirty(&mut self, token: u64) {
        if self.dirty.last() != Some(&token) {
            self.dirty.push(token);
        }
    }

    fn push_slot(&mut self, token: u64, version: u8, arrived: Instant, response: Option<Response>) {
        self.slots.push(Slot {
            token,
            version,
            arrived,
            response,
        });
    }
}

// ---------------------------------------------------------------------
// The reactor loop
// ---------------------------------------------------------------------

/// Runs the reactor until `stop`; the server's background thread body.
pub(crate) fn reactor_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    config: Arc<ServerConfig>,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    obs: Arc<ServerObs>,
) {
    if let Err(e) = run(&listener, &registry, &config, &stop, &counters, &obs) {
        // A reactor that cannot poll cannot serve; surface the reason
        // rather than spinning. (Poller construction is the only
        // fallible step that lands here — per-connection errors are
        // handled inline by dropping the connection.)
        crate::log_error!("reactor", "reactor failed: {e}");
    }
}

fn run(
    listener: &TcpListener,
    registry: &Registry,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &ServerCounters,
    obs: &ServerObs,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = sys::Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
    let mut slab = Slab::new();
    let mut events: Vec<sys::Event> = Vec::new();
    let mut tick = Tick::default();
    let mut last_sweep = Instant::now();

    while !stop.load(Ordering::SeqCst) {
        poller.wait(&mut events, config.poll_interval)?;
        // Idle wakeups (shutdown poll timeouts) are not ticks worth
        // histogramming; only time passes through real work.
        let tick_started = (!events.is_empty()).then(Instant::now);
        for event in &events {
            if event.token == LISTENER_TOKEN {
                accept_ready(listener, &poller, &mut slab, config, counters);
                continue;
            }
            if event.readable {
                read_ready(
                    event.token,
                    &mut slab,
                    &mut tick,
                    registry,
                    config,
                    counters,
                    obs,
                );
            }
            if event.writable {
                tick.push_dirty(event.token);
            }
        }
        if !tick.slots.is_empty() {
            obs.inflight_frames.record(tick.slots.len() as u64);
        }
        run_jobs(&mut tick, config, counters, obs);
        scatter(&mut tick, &mut slab, counters, obs);
        for token in std::mem::take(&mut tick.dirty) {
            flush_and_sweep(token, &mut slab, &poller, config, counters, obs);
        }
        tick.slots.clear();
        // Connection hygiene rides the poll tick: reap connections idle
        // past `idle_timeout` and slow-loris peers holding a half frame
        // past `half_frame_deadline`.
        if last_sweep.elapsed() >= SWEEP_INTERVAL {
            last_sweep = Instant::now();
            sweep_stale(&mut slab, config, counters);
        }
        if let Some(started) = tick_started {
            obs.tick_ns.record(started.elapsed().as_nanos() as u64);
        }
    }

    drain(&mut slab, counters);
    poller.remove(listener.as_raw_fd());
    Ok(())
}

/// Accepts everything the listen queue holds. The reactor never
/// refuses a connection: an idle socket costs one fd and a few hundred
/// bytes, so capacity is the fd limit, not a thread count.
fn accept_ready(
    listener: &TcpListener,
    poller: &sys::Poller,
    slab: &mut Slab,
    config: &ServerConfig,
    counters: &ServerCounters,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue; // peer already gone
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                let token = slab.insert(Conn {
                    stream,
                    fd,
                    acc: FrameAccumulator::new(config.max_frame_len),
                    out: Vec::new(),
                    out_pos: 0,
                    close_after_flush: false,
                    interest: (true, false),
                    stalled_since: None,
                    last_activity: Instant::now(),
                    partial_since: None,
                });
                counters.connections.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::SeqCst);
                if poller.add(fd, token, true, false).is_err() {
                    // Registration failure (fd limit pressure inside
                    // the poller): drop the connection cleanly.
                    drop_conn(token, slab, counters);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (EMFILE…): back off briefly
                // instead of spinning on a hot listener.
                std::thread::sleep(Duration::from_millis(5));
                break;
            }
        }
    }
}

fn drop_conn(token: u64, slab: &mut Slab, counters: &ServerCounters) {
    if slab.remove(token).is_some() {
        // The poller forgets a closed fd automatically; dropping the
        // stream closes it.
        counters.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reaps connections that are idle past [`ServerConfig::idle_timeout`]
/// or have held a half-written frame past
/// [`ServerConfig::half_frame_deadline`] (the slow-loris pattern: trickle
/// a length prefix, then hold the fd hostage byte by byte). A
/// connection with buffered replies or buffered request bytes is never
/// "idle" — only a peer with nothing in flight in either direction.
fn sweep_stale(slab: &mut Slab, config: &ServerConfig, counters: &ServerCounters) {
    if config.idle_timeout.is_none() && config.half_frame_deadline.is_none() {
        return;
    }
    let now = Instant::now();
    let mut doomed: Vec<u64> = Vec::new();
    for (index, (gen, slot)) in slab.entries.iter().enumerate() {
        let Some(conn) = slot.as_ref() else {
            continue;
        };
        let idle = config.idle_timeout.is_some_and(|t| {
            conn.acc.pending_bytes() == 0
                && conn.backlog() == 0
                && now.duration_since(conn.last_activity) >= t
        });
        let loris = config.half_frame_deadline.is_some_and(|t| {
            conn.partial_since
                .is_some_and(|since| now.duration_since(since) >= t)
        });
        if idle || loris {
            doomed.push(token(index as u32, *gen));
        }
    }
    for t in doomed {
        counters.connections_reaped.fetch_add(1, Ordering::Relaxed);
        drop_conn(t, slab, counters);
    }
}

/// Pulls every available byte from a readable connection and decodes
/// the complete frames into this tick's slots/jobs.
fn read_ready(
    token: u64,
    slab: &mut Slab,
    tick: &mut Tick,
    registry: &Registry,
    config: &ServerConfig,
    counters: &ServerCounters,
    obs: &ServerObs,
) {
    let Some(conn) = slab.get_mut(token) else {
        return;
    };
    if conn.close_after_flush || conn.backlog() > config.write_backpressure {
        // Closing, or backpressured: leave the bytes in the kernel
        // buffer (level-triggered readiness re-reports them once the
        // peer drains our replies).
        if !conn.close_after_flush && conn.stalled_since.is_none() {
            conn.stalled_since = Some(Instant::now());
            obs.stall_count.inc();
        }
        return;
    }
    let mut buf = [0u8; READ_CHUNK];
    let mut eof = false;
    // Every frame completed by this readiness event shares one arrival
    // stamp: the moment its bytes landed. Deadlines are measured from
    // here, so time spent queued behind this tick's other work counts
    // against the budget.
    let now = Instant::now();
    let mut got_bytes = false;
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(k) => {
                got_bytes = true;
                conn.acc.extend(&buf[..k]);
                if conn.acc.pending_bytes() as u64 > config.max_frame_len as u64 + 4 {
                    break; // one frame's worth is buffered; parse first
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                drop_conn(token, slab, counters);
                return;
            }
        }
    }
    if got_bytes {
        conn.last_activity = now;
    }

    // Decode every complete frame in arrival order.
    loop {
        let Some(conn) = slab.get_mut(token) else {
            return;
        };
        match conn.acc.next_frame() {
            Ok(Some(payload)) => {
                decode_frame(&payload, token, now, tick, registry, config, counters, obs);
            }
            Ok(None) => break,
            Err(e) => {
                // Oversized length prefix: framing can no longer be
                // trusted; final error reply, then close after flush.
                conn.close_after_flush = true;
                tick.push_slot(
                    token,
                    crate::protocol::PROTOCOL_VERSION,
                    now,
                    Some(Response::Error(format!("bad request: {e}"))),
                );
                break;
            }
        }
    }
    // Track how long a half frame has been outstanding (slow-loris
    // clock): armed when a partial frame first appears, cleared the
    // moment the connection is frame-aligned again.
    if let Some(conn) = slab.get_mut(token) {
        if conn.acc.pending_bytes() > 0 {
            conn.partial_since.get_or_insert(now);
        } else {
            conn.partial_since = None;
        }
    }
    if eof {
        // Peer half-closed: answer what it already sent, then close.
        if let Some(conn) = slab.get_mut(token) {
            conn.close_after_flush = true;
        }
    }
    tick.push_dirty(token);
}

/// Decodes one frame into an inline reply or a coalesced-job target.
#[allow(clippy::too_many_arguments)] // one call site; a params struct would only rename the list
fn decode_frame(
    payload: &[u8],
    token: u64,
    arrived: Instant,
    tick: &mut Tick,
    registry: &Registry,
    config: &ServerConfig,
    counters: &ServerCounters,
    obs: &ServerObs,
) {
    let slot = tick.slots.len();
    let (request, version) = match Request::decode_with_version(payload) {
        Ok(decoded) => decoded,
        Err(e) => {
            tick.push_slot(
                token,
                salvage_version(payload),
                arrived,
                Some(Response::Error(format!("bad request: {e}"))),
            );
            return;
        }
    };
    // A frame that aged past its deadline while waiting to be decoded
    // gets a `DEADLINE_EXCEEDED` reply instead of consuming dispatch
    // time (coalesced queries get a second check at kernel-call time in
    // `run_jobs`). `PING` is exempt: liveness probes must answer even
    // on a drowning server.
    if let Some(deadline) = config.request_deadline {
        if !matches!(request, Request::Ping) && arrived.elapsed() > deadline {
            tick.push_slot(
                token,
                version,
                arrived,
                Some(Response::deadline_exceeded(
                    "request aged past its deadline before dispatch",
                )),
            );
            return;
        }
    }
    // Admission control: past the in-flight high-water mark, shed the
    // cheapest work first — read queries, which are free to retry —
    // with a typed `OVERLOADED` reply the client's backoff honors.
    // Mutations (whose reply is the WAL ack) and control-plane ops are
    // never shed; see [`crate::server::sheddable`].
    if let Some(hwm) = config.shed_inflight_hwm {
        if tick.slots.len() >= hwm && crate::server::sheddable(&request) {
            tick.push_slot(
                token,
                version,
                arrived,
                Some(Response::overloaded(
                    config.retry_after_ms(),
                    format!("overloaded: {} frames already in flight this tick", slot),
                )),
            );
            return;
        }
    }
    // Startup gate: while namespace load / WAL replay is still in
    // progress, reads get the same typed `NOT_READY` the dispatcher
    // gives everything else — not a misleading "unknown namespace"
    // from a registry that simply hasn't loaded yet. (`PING`/`LIST`
    // fall through and stay answerable.)
    if !registry.is_ready() && matches!(request, Request::Reach { .. } | Request::Batch { .. }) {
        tick.push_slot(
            token,
            version,
            arrived,
            Some(Response::not_ready(
                config.retry_after_ms(),
                "server is starting up (namespace load / WAL replay in progress)",
            )),
        );
        return;
    }
    // Queries against frozen namespaces coalesce; everything else is
    // cheap (or lock-bound anyway) and answered inline through the
    // same dispatcher the thread-pool server uses.
    let (ns, pairs, batch): (&str, Vec<(u32, u32)>, bool) = match &request {
        Request::Reach { ns, u, v } => (ns, vec![(*u, *v)], false),
        Request::Batch { ns, pairs } => (ns, pairs.clone(), true),
        _ => {
            tick.push_slot(
                token,
                version,
                arrived,
                Some(crate::server::handle_request(
                    request, registry, config, counters, obs,
                )),
            );
            return;
        }
    };
    let response = match registry.get(ns) {
        None => Some(Response::Error(
            ServeError::UnknownNamespace(ns.to_owned()).to_string(),
        )),
        Some(handle) if handle.is_frozen() => {
            match pairs
                .iter()
                .try_for_each(|&(u, v)| handle.validate_pair(u, v))
            {
                Err(e) => Some(Response::Error(e.to_string())),
                Ok(()) => {
                    // The per-tick coalesced-pair budget bounds how much
                    // kernel time one tick can commit to. A frame that
                    // would bust it is shed — unless the namespace's
                    // batch is still empty, so an oversized-but-legal
                    // batch always makes progress eventually.
                    let queued = tick.jobs.get(ns).map_or(0, |j| j.pairs.len());
                    let over_budget = config
                        .shed_coalesced_pairs
                        .is_some_and(|budget| queued > 0 && queued + pairs.len() > budget);
                    if over_budget {
                        Some(Response::overloaded(
                            config.retry_after_ms(),
                            format!(
                                "overloaded: coalesced-batch budget for namespace {ns:?} exhausted this tick"
                            ),
                        ))
                    } else {
                        let job = tick.jobs.entry(ns.to_owned()).or_insert_with(|| Job {
                            handle,
                            pairs: Vec::new(),
                            targets: Vec::new(),
                        });
                        job.targets.push(Target {
                            slot,
                            start: job.pairs.len(),
                            len: pairs.len(),
                            batch,
                        });
                        job.pairs.extend_from_slice(&pairs);
                        None
                    }
                }
            }
        }
        // Dynamic namespaces serialize through their mutex regardless;
        // answer inline.
        Some(handle) => Some(match handle.reach_batch(&pairs, 1) {
            Ok(answers) if batch => Response::Bools(answers),
            Ok(answers) => Response::Bool(answers[0]),
            Err(e) => Response::Error(e.to_string()),
        }),
    };
    tick.push_slot(token, version, arrived, response);
}

/// Runs every namespace's coalesced batch through one kernel call
/// (chunked at the protocol's `MAX_BATCH_PAIRS` so a tick of many
/// maximal batches cannot force one unbounded allocation), then fills
/// the targets' slots.
fn run_jobs(tick: &mut Tick, config: &ServerConfig, counters: &ServerCounters, obs: &ServerObs) {
    let jobs = std::mem::take(&mut tick.jobs);
    let dispatch = Instant::now();
    for (_, mut job) in jobs {
        // Last deadline check, at the moment the kernel call would
        // start: frames that aged out queued behind this tick's other
        // work answer `DEADLINE_EXCEEDED` and their pairs drop out of
        // the batch rather than consuming kernel time.
        if let Some(deadline) = config.request_deadline {
            let mut live_pairs: Vec<(u32, u32)> = Vec::with_capacity(job.pairs.len());
            let mut live_targets: Vec<Target> = Vec::with_capacity(job.targets.len());
            for mut target in job.targets {
                let arrived = tick.slots[target.slot].arrived;
                if dispatch.duration_since(arrived) > deadline {
                    tick.slots[target.slot].response = Some(Response::deadline_exceeded(
                        "request aged past its deadline before dispatch",
                    ));
                    continue;
                }
                let slice = &job.pairs[target.start..target.start + target.len];
                target.start = live_pairs.len();
                live_pairs.extend_from_slice(slice);
                live_targets.push(target);
            }
            job.pairs = live_pairs;
            job.targets = live_targets;
            if job.targets.is_empty() {
                continue;
            }
        }
        obs.coalesce_batch.record(job.pairs.len() as u64);
        let mut answers: Vec<bool> = Vec::with_capacity(job.pairs.len());
        let mut failed = None;
        for chunk in job
            .pairs
            .chunks(MAX_BATCH_PAIRS as usize)
            .filter(|c| !c.is_empty())
        {
            match job.handle.reach_batch(chunk, config.batch_threads) {
                Ok(mut a) => answers.append(&mut a),
                Err(e) => {
                    // Unreachable in practice: every pair was
                    // validated at decode time. Fail the frames of
                    // this namespace rather than the whole tick.
                    failed = Some(e.to_string());
                    break;
                }
            }
        }
        if job.targets.len() > 1 {
            counters.coalesced_calls.fetch_add(1, Ordering::Relaxed);
            counters
                .coalesced_frames
                .fetch_add(job.targets.len() as u64, Ordering::Relaxed);
        }
        for target in job.targets {
            let response = match &failed {
                Some(message) => Response::Error(message.clone()),
                None => {
                    let slice = &answers[target.start..target.start + target.len];
                    if target.batch {
                        Response::Bools(slice.to_vec())
                    } else {
                        Response::Bool(slice[0])
                    }
                }
            };
            tick.slots[target.slot].response = Some(response);
        }
    }
}

/// Appends every slot's encoded reply to its connection's write
/// buffer, in slot order — which is per-connection arrival order.
fn scatter(tick: &mut Tick, slab: &mut Slab, counters: &ServerCounters, obs: &ServerObs) {
    for slot in tick.slots.drain(..) {
        let response = slot
            .response
            .unwrap_or_else(|| Response::Error("internal: request went unanswered".into()));
        // Count before the connection lookup: a frame whose connection
        // died mid-tick was still served, and the books must reconcile
        // (frames = answers + sheds + deadline refusals).
        crate::server::count_reply(counters, &response);
        let Some(conn) = slab.get_mut(slot.token) else {
            continue; // connection died mid-tick; drop its replies
        };
        encode_into(&mut conn.out, &response, slot.version);
        obs.reply_latency_ns
            .record(slot.arrived.elapsed().as_nanos() as u64);
    }
}

/// Encodes `response` as one length-prefixed frame appended to `out`,
/// speaking the dialect the request arrived in.
fn encode_into(out: &mut Vec<u8>, response: &Response, version: u8) {
    let payload = response.encode_versioned(version).unwrap_or_else(|e| {
        Response::Error(format!("internal encode failure: {e}"))
            .encode_versioned(version)
            .expect("plain error replies always encode")
    });
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Writes as much of a connection's buffer as the socket accepts, then
/// reconciles poller interest: write interest while a backlog remains,
/// read interest unless closing or backpressured.
fn flush_and_sweep(
    token: u64,
    slab: &mut Slab,
    poller: &sys::Poller,
    config: &ServerConfig,
    counters: &ServerCounters,
    obs: &ServerObs,
) {
    let Some(conn) = slab.get_mut(token) else {
        return;
    };
    obs.queue_depth.record(conn.backlog() as u64);
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                drop_conn(token, slab, counters);
                return;
            }
            Ok(k) => conn.out_pos += k,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                drop_conn(token, slab, counters);
                return;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_flush {
            drop_conn(token, slab, counters);
            return;
        }
    } else if conn.backlog() > config.max_conn_backlog {
        // Soft backpressure pauses reads; this is the hard line. A peer
        // that pipelines faster than it drains replies past the cap is
        // abusive (or dead), and holding its buffer hostage-style costs
        // memory every other connection shares. Close it.
        counters.connections_reaped.fetch_add(1, Ordering::Relaxed);
        drop_conn(token, slab, counters);
        return;
    } else if conn.out_pos >= 64 * 1024 {
        // Reclaim the written prefix of a large backlog.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    let want_write = conn.backlog() > 0;
    let want_read = !conn.close_after_flush && conn.backlog() <= config.write_backpressure;
    if want_read {
        if let Some(stalled) = conn.stalled_since.take() {
            obs.stall_ns.add(stalled.elapsed().as_nanos() as u64);
        }
    }
    if conn.interest != (want_read, want_write) {
        conn.interest = (want_read, want_write);
        if poller
            .modify(conn.fd, token, want_read, want_write)
            .is_err()
        {
            drop_conn(token, slab, counters);
        }
    }
}

/// Graceful-drain tail of a shutdown: briefly flush whatever replies
/// are still buffered (bounded per connection *and* overall, so a
/// wedged peer cannot hold the process), then close everything.
fn drain(slab: &mut Slab, counters: &ServerCounters) {
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut closed = 0u64;
    for conn in slab.drain_live() {
        closed += 1;
        if conn.backlog() > 0 && Instant::now() < deadline {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(Duration::from_millis(100)));
            let mut stream = conn.stream;
            let _ = stream.write_all(&conn.out[conn.out_pos..]);
        }
    }
    // drain_live consumed the gauge's connections in one sweep.
    counters.active.fetch_sub(closed as usize, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_conn() -> Conn {
        // A loopback socket pair gives the slab something real to own.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let fd = stream.as_raw_fd();
        Conn {
            stream,
            fd,
            acc: FrameAccumulator::new(1024),
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            interest: (true, false),
            stalled_since: None,
            last_activity: Instant::now(),
            partial_since: None,
        }
    }

    #[test]
    fn slab_tokens_go_stale_on_removal_and_slots_are_reused() {
        let mut slab = Slab::new();
        let t1 = slab.insert(dummy_conn());
        assert!(slab.get_mut(t1).is_some());
        assert!(slab.remove(t1).is_some());
        assert!(slab.get_mut(t1).is_none(), "stale token must not resolve");
        assert!(slab.remove(t1).is_none(), "double remove is a no-op");

        let t2 = slab.insert(dummy_conn());
        let (i1, g1) = untoken(t1);
        let (i2, g2) = untoken(t2);
        assert_eq!(i1, i2, "slot is reused");
        assert_ne!(g1, g2, "generation advanced");
        assert!(slab.get_mut(t1).is_none(), "old token still stale");
        assert!(slab.get_mut(t2).is_some());
        assert_eq!(slab.live, 1);
    }

    #[test]
    fn poller_reports_readable_loopback_data() {
        let poller = sys::Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, true, false).unwrap();

        // Nothing pending: the wait times out empty.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        a.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readiness never reported");
        }
        poller.remove(b.as_raw_fd());
    }
}
