//! The multi-namespace oracle registry.
//!
//! A serving process holds many named graphs at once — one per tenant,
//! dataset, or snapshot generation. Each namespace is either a
//! **frozen** [`Oracle`] snapshot (the common case: built offline,
//! shipped via [`hoplite_core::persist`], served read-only) or a
//! **dynamic** [`DynamicOracle`] that additionally accepts
//! `ADD_EDGE` / `REMOVE_EDGE`.
//!
//! Lookups take a short [`RwLock`] read to clone an [`Arc`] handle;
//! from there the frozen fast path touches no lock at all — the labels
//! are immutable, so any number of connection threads answer queries
//! concurrently (`hoplite_core::parallel` relies on the same
//! property). Dynamic namespaces serialize through a per-namespace
//! [`Mutex`], so a mutable tenant never stalls a frozen one.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use hoplite_core::{DynamicOracle, Histogram, MutationError, Oracle, WalConfig, WalDir};
use hoplite_graph::{Dag, GraphError};

use crate::obs::{QueryObs, SlowQuery};
use crate::protocol::{
    IndexBackend, MetricsReport, MetricsSummary, NamespaceInfo, NamespaceKind, NamespaceStats,
    MAX_NAME_LEN,
};

/// Why a request against the registry could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// No namespace registered under this name.
    UnknownNamespace(String),
    /// A vertex id at or past the namespace's vertex count.
    VertexOutOfRange {
        /// The offending id.
        vertex: u32,
        /// The namespace's vertex count.
        vertices: usize,
    },
    /// Mutation attempted on a frozen namespace.
    FrozenNamespace(String),
    /// Rejected or invalid registry name.
    InvalidName(String),
    /// Graph-level rejection (cycle, bad endpoint) from the dynamic
    /// oracle.
    Graph(GraphError),
    /// The write-ahead log refused the mutation (or recovery /
    /// checkpointing failed): the op was **not** applied and must not
    /// be acknowledged.
    Wal(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownNamespace(ns) => write!(f, "unknown namespace {ns:?}"),
            ServeError::VertexOutOfRange { vertex, vertices } => {
                write!(f, "vertex {vertex} out of range (namespace has {vertices})")
            }
            ServeError::FrozenNamespace(ns) => {
                write!(
                    f,
                    "namespace {ns:?} is frozen; edge mutations need a dynamic namespace"
                )
            }
            ServeError::InvalidName(m) => write!(f, "invalid namespace name: {m}"),
            ServeError::Graph(e) => write!(f, "{e}"),
            ServeError::Wal(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Graph(e) => Some(e),
            ServeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}

impl From<MutationError> for ServeError {
    fn from(e: MutationError) -> Self {
        match e {
            MutationError::Graph(e) => ServeError::Graph(e),
            MutationError::Durability(e) => ServeError::Wal(e),
        }
    }
}

struct FrozenNs {
    /// The snapshot, behind its own `Arc` so `LIST`-able namespaces,
    /// replicas, and reloads can *share* one index (and, for a mapped
    /// HOPL v3 oracle, one arena) instead of cloning it — see
    /// [`Registry::insert_frozen`].
    oracle: Arc<Oracle>,
    queries: AtomicU64,
    /// Per-stage death counters ("where do my queries die"): decided
    /// by the pre-filter stack / rejected by the signature `AND` / ran
    /// the intersection kernel. Batches fold a whole
    /// [`hoplite_core::QueryTally`] in at once, so the hot path pays
    /// three relaxed adds per *batch*, not per query.
    filter_hits: AtomicU64,
    signature_hits: AtomicU64,
    merge_runs: AtomicU64,
    /// Latency histograms (split by deciding stage) and the slow-query
    /// log — the namespace's contribution to the `METRICS` op.
    obs: QueryObs,
}

impl FrozenNs {
    fn record(&self, tally: &hoplite_core::QueryTally) {
        self.filter_hits
            .fetch_add(tally.filter_decided, Ordering::Relaxed);
        self.signature_hits
            .fetch_add(tally.signature_cut, Ordering::Relaxed);
        self.merge_runs.fetch_add(tally.merged, Ordering::Relaxed);
    }
}

struct DynamicNs {
    oracle: Mutex<DynamicOracle>,
    queries: AtomicU64,
    /// Background-rebuild latch: the mutation that crosses the overlay
    /// threshold wins this flag and spawns the worker; everyone else
    /// keeps answering through the delta overlay. Readers never block
    /// on a rebuild — the worker holds the namespace mutex only for
    /// the plan snapshot and the final publish, never for the build.
    rebuild_in_flight: AtomicBool,
    /// Background rebuilds completed (worker publishes).
    rebuilds: AtomicU64,
    /// Wall-clock nanoseconds per background rebuild, plan → publish.
    rebuild_ns: Histogram,
    /// Lock-free mirrors of the oracle's durability counters, refreshed
    /// after every mutation/rotation so `METRICS` never queues behind a
    /// writer.
    wal_bytes: AtomicU64,
    wal_records: AtomicU64,
    /// Present iff the namespace is durable: the rebuild worker stages
    /// the next checkpoint here *off* the namespace lock before
    /// `Durability::rotate` publishes it.
    wal: Option<WalDir>,
    /// Unix-epoch milliseconds when the in-flight rebuild started
    /// (zero when idle). Readiness probes compare it against the
    /// registry's stall threshold to spot a wedged worker.
    rebuild_started_ms: AtomicU64,
}

impl DynamicNs {
    fn new(oracle: DynamicOracle, wal: Option<WalDir>) -> Self {
        let (wal_bytes, wal_records) = (oracle.wal_bytes(), oracle.wal_records_total());
        DynamicNs {
            oracle: Mutex::new(oracle),
            queries: AtomicU64::new(0),
            rebuild_in_flight: AtomicBool::new(false),
            rebuilds: AtomicU64::new(0),
            rebuild_ns: Histogram::new(),
            wal_bytes: AtomicU64::new(wal_bytes),
            wal_records: AtomicU64::new(wal_records),
            wal,
            rebuild_started_ms: AtomicU64::new(0),
        }
    }

    /// Refreshes the lock-free durability mirrors; call with the lock
    /// held (or just released) after anything that moved the WAL.
    fn mirror_wal(&self, oracle: &DynamicOracle) {
        self.wal_bytes.store(oracle.wal_bytes(), Ordering::Relaxed);
        self.wal_records
            .store(oracle.wal_records_total(), Ordering::Relaxed);
    }
}

/// Arms the rebuild latch and spawns the worker thread. No-op when a
/// worker is already in flight; on spawn failure the latch is released
/// (queries stay correct through the overlay, only the fold is
/// deferred).
fn spawn_rebuild(name: &str, ns: &Arc<DynamicNs>) {
    if ns.rebuild_in_flight.swap(true, Ordering::AcqRel) {
        return;
    }
    ns.rebuild_started_ms
        .store(now_unix_ms(), Ordering::Relaxed);
    let worker = Arc::clone(ns);
    let spawned = std::thread::Builder::new()
        .name(format!("hoplite-rebuild-{name}"))
        .spawn(move || {
            // A panic anywhere in the rebuild (plan execution,
            // checkpoint staging, publish) must not strand the latch
            // armed: nothing would ever spawn another worker again,
            // the overlay would grow without bound, and quiesce()
            // would spin forever. Queries stay correct through the
            // overlay either way; only the fold is deferred.
            let run =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rebuild_worker(&worker)));
            if run.is_err() {
                worker.rebuild_started_ms.store(0, Ordering::Relaxed);
                worker.rebuild_in_flight.store(false, Ordering::Release);
                crate::log_error!("rebuild", "worker panicked; rebuild latch released");
            }
        });
    if let Err(e) = spawned {
        ns.rebuild_started_ms.store(0, Ordering::Relaxed);
        ns.rebuild_in_flight.store(false, Ordering::Release);
        crate::log_error!("rebuild", "worker spawn failed for {name:?}: {e}");
    }
}

/// Milliseconds since the Unix epoch — coarse wall-clock for the
/// rebuild-stall probe (monotonicity does not matter there; a clock
/// step merely shifts one probe's verdict).
fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The background rebuild loop. Per iteration: snapshot a
/// [`hoplite_core::RebuildPlan`] under the lock, run the expensive
/// label construction (and, for durable namespaces, stage the next
/// checkpoint) entirely off-lock, then re-take the lock just long
/// enough to publish the fresh index — mutations that landed mid-build
/// survive as the new overlay — and rotate the WAL onto the staged
/// checkpoint. Loops while the overlay is still past threshold (heavy
/// mid-build write traffic), then disarms.
fn rebuild_worker(ns: &Arc<DynamicNs>) {
    loop {
        // Re-stamp per iteration: a worker looping through many quick
        // folds is making progress, not wedged.
        ns.rebuild_started_ms
            .store(now_unix_ms(), Ordering::Relaxed);
        let started = std::time::Instant::now();
        let plan = lock_unpoisoned(&ns.oracle).rebuild_plan();
        let rebuilt = plan.execute();
        let staged = match &ns.wal {
            None => false,
            Some(dir) => match hoplite_core::wal::checkpoint_bytes(rebuilt.dag())
                .and_then(|arena| dir.prepare_checkpoint(&arena))
            {
                Ok(()) => true,
                Err(e) => {
                    // Skip this rotation; the current generation's
                    // checkpoint + WAL still reconstruct every
                    // acknowledged op.
                    crate::log_error!(
                        "rebuild",
                        "checkpoint staging failed in {}: {e}",
                        dir.path().display()
                    );
                    false
                }
            },
        };
        let more = {
            let mut oracle = lock_unpoisoned(&ns.oracle);
            let overlay = oracle.publish(rebuilt);
            if staged {
                if let Some(d) = oracle.durability_mut() {
                    if let Err(e) = d.rotate(&overlay) {
                        crate::log_error!("rebuild", "wal rotation failed: {e}");
                    }
                }
            }
            ns.mirror_wal(&oracle);
            oracle.needs_rebuild()
        };
        ns.rebuilds.fetch_add(1, Ordering::Relaxed);
        ns.rebuild_ns.record(started.elapsed().as_nanos() as u64);
        if more {
            continue;
        }
        ns.rebuild_started_ms.store(0, Ordering::Relaxed);
        ns.rebuild_in_flight.store(false, Ordering::Release);
        // A mutation may have crossed the threshold between the check
        // above and the disarm — it saw the latch armed and did not
        // spawn, so re-arm and keep going rather than strand it.
        if lock_unpoisoned(&ns.oracle).needs_rebuild()
            && !ns.rebuild_in_flight.swap(true, Ordering::AcqRel)
        {
            continue;
        }
        return;
    }
}

#[derive(Clone)]
enum Inner {
    Frozen(Arc<FrozenNs>),
    Dynamic(Arc<DynamicNs>),
}

/// A cheaply clonable handle to one namespace; survives the namespace
/// being replaced or removed from the registry (in-flight queries on
/// an old snapshot finish against that snapshot).
#[derive(Clone)]
pub struct NamespaceHandle {
    inner: Inner,
}

impl NamespaceHandle {
    /// Frozen snapshot or dynamic oracle?
    pub fn kind(&self) -> NamespaceKind {
        match &self.inner {
            Inner::Frozen(_) => NamespaceKind::Frozen,
            Inner::Dynamic(_) => NamespaceKind::Dynamic,
        }
    }

    /// Is this a frozen (lock-free, batch-coalescable) snapshot?
    pub fn is_frozen(&self) -> bool {
        matches!(&self.inner, Inner::Frozen(_))
    }

    /// Vertices addressable by queries.
    pub fn num_vertices(&self) -> usize {
        match &self.inner {
            Inner::Frozen(ns) => ns.oracle.num_vertices(),
            Inner::Dynamic(ns) => lock_unpoisoned(&ns.oracle).num_vertices(),
        }
    }

    /// Range-checks one query pair without answering it. The reactor's
    /// coalescing layer validates every frame *before* admitting its
    /// pairs into the shared per-tick batch, so one client's
    /// out-of-range vertex fails that client's frame alone — never the
    /// super-batch carrying everyone else's queries.
    pub fn validate_pair(&self, u: u32, v: u32) -> Result<(), ServeError> {
        let n = self.num_vertices();
        self.check(u, n)?;
        self.check(v, n)
    }

    fn check(&self, vertex: u32, vertices: usize) -> Result<(), ServeError> {
        if (vertex as usize) < vertices {
            Ok(())
        } else {
            Err(ServeError::VertexOutOfRange { vertex, vertices })
        }
    }

    /// Does `u` reach `v`? Reflexive, like every oracle in the
    /// workspace.
    ///
    /// Frozen namespaces answer through the full [`Oracle`] hot path:
    /// the O(1) pre-filter stack ([`hoplite_core::QueryFilters`] —
    /// topological levels, spanning-tree and GRAIL-style intervals,
    /// degree shortcuts) decides most queries before the label
    /// intersection runs, so the wire handler's per-query cost is
    /// usually a handful of array probes.
    pub fn reach(&self, u: u32, v: u32) -> Result<bool, ServeError> {
        match &self.inner {
            Inner::Frozen(ns) => {
                let n = ns.oracle.num_vertices();
                self.check(u, n)?;
                self.check(v, n)?;
                ns.queries.fetch_add(1, Ordering::Relaxed);
                let mut tally = hoplite_core::QueryTally::default();
                let started = std::time::Instant::now();
                let answer = ns.oracle.reaches_tallied(u, v, &mut tally);
                ns.obs
                    .record_single(u, v, started.elapsed().as_nanos() as u64, &tally);
                ns.record(&tally);
                Ok(answer)
            }
            Inner::Dynamic(ns) => {
                let oracle = lock_unpoisoned(&ns.oracle);
                let n = oracle.num_vertices();
                self.check(u, n)?;
                self.check(v, n)?;
                ns.queries.fetch_add(1, Ordering::Relaxed);
                Ok(oracle.query(u, v))
            }
        }
    }

    /// Answers every pair, preserving order. Frozen namespaces fan the
    /// batch out over `threads` workers
    /// ([`hoplite_core::parallel::par_query_batch_mapped`], which maps
    /// component ids and runs the pre-filter stack inside each worker);
    /// dynamic ones answer inline under their lock.
    pub fn reach_batch(
        &self,
        pairs: &[(u32, u32)],
        threads: usize,
    ) -> Result<Vec<bool>, ServeError> {
        match &self.inner {
            Inner::Frozen(ns) => {
                let n = ns.oracle.num_vertices();
                for &(u, v) in pairs {
                    self.check(u, n)?;
                    self.check(v, n)?;
                }
                ns.queries.fetch_add(pairs.len() as u64, Ordering::Relaxed);
                let started = std::time::Instant::now();
                let (answers, tally) = ns.oracle.reaches_batch_tallied(pairs, threads);
                ns.obs.batch_ns.record(started.elapsed().as_nanos() as u64);
                ns.record(&tally);
                Ok(answers)
            }
            Inner::Dynamic(ns) => {
                let oracle = lock_unpoisoned(&ns.oracle);
                let n = oracle.num_vertices();
                for &(u, v) in pairs {
                    self.check(u, n)?;
                    self.check(v, n)?;
                }
                ns.queries.fetch_add(pairs.len() as u64, Ordering::Relaxed);
                Ok(pairs.iter().map(|&(u, v)| oracle.query(u, v)).collect())
            }
        }
    }

    /// Inserts `u → v`; dynamic namespaces only. Re-inserting a live
    /// edge is a no-op success; closing a cycle is an error. On a
    /// durable namespace the op hits the WAL *before* it is applied —
    /// an `Err` means nothing changed and nothing was logged, so the
    /// caller must not acknowledge. Crossing the overlay threshold
    /// arms a background rebuild; this call never runs one inline.
    pub fn add_edge(&self, name: &str, u: u32, v: u32) -> Result<(), ServeError> {
        match &self.inner {
            Inner::Frozen(_) => Err(ServeError::FrozenNamespace(name.to_owned())),
            Inner::Dynamic(ns) => {
                let rebuild = {
                    let mut oracle = lock_unpoisoned(&ns.oracle);
                    oracle.insert_edge(u, v)?;
                    ns.mirror_wal(&oracle);
                    oracle.needs_rebuild()
                };
                if rebuild {
                    spawn_rebuild(name, ns);
                }
                Ok(())
            }
        }
    }

    /// Removes `u → v`; dynamic namespaces only. Returns whether the
    /// edge existed. Same durability and background-rebuild contract
    /// as [`NamespaceHandle::add_edge`].
    pub fn remove_edge(&self, name: &str, u: u32, v: u32) -> Result<bool, ServeError> {
        match &self.inner {
            Inner::Frozen(_) => Err(ServeError::FrozenNamespace(name.to_owned())),
            Inner::Dynamic(ns) => {
                let (existed, rebuild) = {
                    let mut oracle = lock_unpoisoned(&ns.oracle);
                    let n = oracle.num_vertices();
                    self.check(u, n)?;
                    self.check(v, n)?;
                    let existed = oracle.remove_edge(u, v)?;
                    ns.mirror_wal(&oracle);
                    (existed, oracle.needs_rebuild())
                };
                if rebuild {
                    spawn_rebuild(name, ns);
                }
                Ok(existed)
            }
        }
    }

    /// Is a background rebuild running right now? (Frozen: always
    /// `false`.)
    pub fn rebuild_in_flight(&self) -> bool {
        match &self.inner {
            Inner::Frozen(_) => false,
            Inner::Dynamic(ns) => ns.rebuild_in_flight.load(Ordering::Acquire),
        }
    }

    /// How long the current in-flight rebuild has been running, in
    /// milliseconds — `None` when no rebuild is in flight. The
    /// readiness probe's raw material for wedged-worker detection.
    pub fn rebuild_running_ms(&self) -> Option<u64> {
        let Inner::Dynamic(ns) = &self.inner else {
            return None;
        };
        if !ns.rebuild_in_flight.load(Ordering::Acquire) {
            return None;
        }
        match ns.rebuild_started_ms.load(Ordering::Relaxed) {
            0 => None,
            started => Some(now_unix_ms().saturating_sub(started)),
        }
    }

    /// Background rebuilds published so far.
    pub fn rebuilds_completed(&self) -> u64 {
        match &self.inner {
            Inner::Frozen(_) => 0,
            Inner::Dynamic(ns) => ns.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Blocks until no background rebuild is in flight and the overlay
    /// is back under threshold — a test/benchmark aid, never needed
    /// for correctness (queries answer through the overlay at any
    /// point). Arms a rebuild itself if one is owed but no worker is
    /// running.
    pub fn quiesce(&self, name: &str) {
        let Inner::Dynamic(ns) = &self.inner else {
            return;
        };
        loop {
            if ns.rebuild_in_flight.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            if lock_unpoisoned(&ns.oracle).needs_rebuild() {
                spawn_rebuild(name, ns);
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            return;
        }
    }

    /// Forces every logged WAL record to stable storage (shutdown /
    /// test hook); no-op for frozen or non-durable namespaces.
    pub fn sync_durability(&self) -> Result<(), ServeError> {
        match &self.inner {
            Inner::Frozen(_) => Ok(()),
            Inner::Dynamic(ns) => lock_unpoisoned(&ns.oracle)
                .sync_durability()
                .map_err(ServeError::Wal),
        }
    }

    /// Point-in-time counters, including the heap-vs-mapped storage
    /// split of the namespace's index ([`hoplite_core::MemorySplit`]):
    /// a replica opened with `--mmap` reports nearly everything under
    /// `mapped_bytes` — shared page cache, not private RSS.
    pub fn stats(&self) -> NamespaceStats {
        match &self.inner {
            Inner::Frozen(ns) => {
                let memory = ns.oracle.memory();
                NamespaceStats {
                    kind: NamespaceKind::Frozen,
                    vertices: ns.oracle.num_vertices() as u64,
                    label_entries: ns.oracle.label_entries(),
                    pending_inserts: 0,
                    pending_deletions: 0,
                    queries: ns.queries.load(Ordering::Relaxed),
                    signature_bytes: ns.oracle.inner().labeling().signature_bytes(),
                    filter_hits: ns.filter_hits.load(Ordering::Relaxed),
                    signature_hits: ns.signature_hits.load(Ordering::Relaxed),
                    merge_runs: ns.merge_runs.load(Ordering::Relaxed),
                    backend: ns.oracle.backend().into(),
                    heap_bytes: memory.heap_bytes,
                    mapped_bytes: memory.mapped_bytes,
                    wal_bytes: 0,
                    wal_records: 0,
                    rebuilds: 0,
                    rebuild_in_flight: false,
                }
            }
            Inner::Dynamic(ns) => {
                let oracle = lock_unpoisoned(&ns.oracle);
                let memory = oracle.memory();
                NamespaceStats {
                    kind: NamespaceKind::Dynamic,
                    vertices: oracle.num_vertices() as u64,
                    label_entries: oracle.label_entries(),
                    pending_inserts: oracle.pending_edges() as u64,
                    pending_deletions: oracle.pending_deletions() as u64,
                    queries: ns.queries.load(Ordering::Relaxed),
                    // The dynamic query path answers through its
                    // overlay, not the frozen signature/merge kernels.
                    signature_bytes: 0,
                    filter_hits: 0,
                    signature_hits: 0,
                    merge_runs: 0,
                    // Dynamic oracles always own their arrays (they
                    // mutate them).
                    backend: IndexBackend::Heap,
                    heap_bytes: memory.heap_bytes,
                    mapped_bytes: memory.mapped_bytes,
                    wal_bytes: oracle.wal_bytes(),
                    wal_records: oracle.wal_records_total(),
                    rebuilds: ns.rebuilds.load(Ordering::Relaxed),
                    rebuild_in_flight: ns.rebuild_in_flight.load(Ordering::Acquire),
                }
            }
        }
    }

    /// Appends this namespace's series to a [`MetricsReport`]: the
    /// query/outcome counters for every kind, plus the latency
    /// histograms the frozen hot path records. Dynamic namespaces
    /// answer through their overlay mutex and are not timed.
    pub(crate) fn fold_metrics(&self, name: &str, report: &mut MetricsReport) {
        match &self.inner {
            Inner::Frozen(ns) => {
                report.counters.push((
                    format!("ns_queries_total{{ns={name:?}}}"),
                    ns.queries.load(Ordering::Relaxed),
                ));
                for (outcome, counter) in [
                    ("filter", &ns.filter_hits),
                    ("signature", &ns.signature_hits),
                    ("merge", &ns.merge_runs),
                ] {
                    report.counters.push((
                        format!("ns_query_outcome_total{{ns={name:?},outcome=\"{outcome}\"}}"),
                        counter.load(Ordering::Relaxed),
                    ));
                }
                for (outcome, hist) in [
                    ("filter", &ns.obs.filter_ns),
                    ("signature", &ns.obs.signature_ns),
                    ("merge", &ns.obs.merge_ns),
                ] {
                    report.histograms.push((
                        format!("ns_query_latency_ns{{ns={name:?},outcome=\"{outcome}\"}}"),
                        MetricsSummary::from(&hist.snapshot()),
                    ));
                }
                report.histograms.push((
                    format!("ns_batch_latency_ns{{ns={name:?}}}"),
                    MetricsSummary::from(&ns.obs.batch_ns.snapshot()),
                ));
            }
            Inner::Dynamic(ns) => {
                report.counters.push((
                    format!("ns_queries_total{{ns={name:?}}}"),
                    ns.queries.load(Ordering::Relaxed),
                ));
                // Durability + rebuild series, all off lock-free
                // mirrors — a metrics scrape never queues behind a
                // writer or an in-flight publish.
                for (series, value) in [
                    ("ns_wal_bytes", ns.wal_bytes.load(Ordering::Relaxed)),
                    (
                        "ns_wal_records_total",
                        ns.wal_records.load(Ordering::Relaxed),
                    ),
                    ("ns_rebuilds_total", ns.rebuilds.load(Ordering::Relaxed)),
                    (
                        "ns_rebuild_in_flight",
                        ns.rebuild_in_flight.load(Ordering::Acquire) as u64,
                    ),
                ] {
                    report
                        .counters
                        .push((format!("{series}{{ns={name:?}}}"), value));
                }
                report.histograms.push((
                    format!("ns_rebuild_duration_ns{{ns={name:?}}}"),
                    MetricsSummary::from(&ns.rebuild_ns.snapshot()),
                ));
            }
        }
    }

    /// This namespace's retained worst queries (frozen only), slowest
    /// first.
    pub(crate) fn slow_queries(&self) -> Vec<SlowQuery> {
        match &self.inner {
            Inner::Frozen(ns) => ns.obs.slow.snapshot(),
            Inner::Dynamic(_) => Vec::new(),
        }
    }
}

/// Recovers the guarded value even if another thread panicked while
/// holding the lock — a serving process must not wedge a namespace on
/// one poisoned request.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// All namespaces a server instance exposes.
///
/// ```
/// use hoplite_core::Oracle;
/// use hoplite_graph::DiGraph;
/// use hoplite_server::Registry;
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let registry = Registry::new();
/// registry.insert_frozen("tiny", Oracle::new(&g)).unwrap();
/// let ns = registry.get("tiny").unwrap();
/// assert!(ns.reach(0, 2).unwrap());
/// assert!(registry.get("absent").is_none());
/// ```
pub struct Registry {
    map: RwLock<HashMap<String, NamespaceHandle>>,
    /// Serving-readiness gate. Starts **true** so embedded/library
    /// users never see refusals; `hoplited serve` clears it before
    /// loading namespaces (WAL replay can take a while) and sets it
    /// once every namespace is registered — the `/readyz` 503→200
    /// flip and the `NOT_READY` wire refusal both key off it.
    ready: AtomicBool,
    /// An in-flight background rebuild older than this many
    /// milliseconds counts as wedged for the readiness probe.
    rebuild_stall_ms: AtomicU64,
}

/// Default wedged-rebuild threshold: rebuilds of production-sized
/// graphs take seconds, not minutes.
const DEFAULT_REBUILD_STALL_MS: u64 = 5 * 60 * 1000;

impl Default for Registry {
    fn default() -> Self {
        Registry {
            map: RwLock::new(HashMap::new()),
            ready: AtomicBool::new(true),
            rebuild_stall_ms: AtomicU64::new(DEFAULT_REBUILD_STALL_MS),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the serving-readiness gate (see the field doc on
    /// [`Registry`]; starts `true`).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Release);
    }

    /// The raw readiness flag, without the wedged-rebuild probe.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Overrides the wedged-rebuild threshold for [`Self::readiness`]
    /// (default five minutes).
    pub fn set_rebuild_stall_threshold(&self, threshold: std::time::Duration) {
        self.rebuild_stall_ms
            .store(threshold.as_millis() as u64, Ordering::Relaxed);
    }

    /// The full readiness probe behind `/readyz`: the ready flag must
    /// be set *and* no namespace may be wedged in a background rebuild
    /// past the stall threshold. `Err` carries the human-readable
    /// reason the probe body reports.
    pub fn readiness(&self) -> Result<(), String> {
        if !self.is_ready() {
            return Err("loading: namespace registration in progress".into());
        }
        let stall_ms = self.rebuild_stall_ms.load(Ordering::Relaxed);
        for (name, handle) in self.handles() {
            if let Some(running_ms) = handle.rebuild_running_ms() {
                if running_ms > stall_ms {
                    return Err(format!(
                        "namespace {name:?} wedged in rebuild for {running_ms}ms \
                         (threshold {stall_ms}ms)"
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_name(name: &str) -> Result<(), ServeError> {
        if name.is_empty() {
            return Err(ServeError::InvalidName("empty name".into()));
        }
        if name.len() > MAX_NAME_LEN {
            return Err(ServeError::InvalidName(format!(
                "{} bytes exceeds the {MAX_NAME_LEN}-byte limit",
                name.len()
            )));
        }
        Ok(())
    }

    fn insert(&self, name: &str, handle: NamespaceHandle) -> Result<bool, ServeError> {
        Self::validate_name(name)?;
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        Ok(map.insert(name.to_owned(), handle).is_some())
    }

    /// Registers (or atomically replaces — the "ship a fresh index to
    /// the replica" path) a frozen snapshot. Returns whether a previous
    /// namespace was replaced.
    ///
    /// Takes anything that converts into an `Arc<Oracle>`: pass an
    /// `Oracle` to move it in, or clone one `Arc<Oracle>` across many
    /// namespaces/registries so every replica serves the **same**
    /// snapshot — zero per-namespace copies, and for an
    /// [`Oracle::open`]ed index one shared file mapping process-wide
    /// (reloads that re-open the same file still share page cache).
    pub fn insert_frozen(
        &self,
        name: &str,
        oracle: impl Into<Arc<Oracle>>,
    ) -> Result<bool, ServeError> {
        self.insert(
            name,
            NamespaceHandle {
                inner: Inner::Frozen(Arc::new(FrozenNs {
                    oracle: oracle.into(),
                    queries: AtomicU64::new(0),
                    filter_hits: AtomicU64::new(0),
                    signature_hits: AtomicU64::new(0),
                    merge_runs: AtomicU64::new(0),
                    obs: QueryObs::new(),
                })),
            },
        )
    }

    /// Registers (or replaces) a dynamic namespace. The registry owns
    /// rebuild scheduling: threshold crossings run on a background
    /// worker thread (never inline under the mutation), so the
    /// oracle's own auto-rebuild is switched off here.
    pub fn insert_dynamic(
        &self,
        name: &str,
        mut oracle: DynamicOracle,
    ) -> Result<bool, ServeError> {
        oracle.set_auto_rebuild(false);
        self.insert(
            name,
            NamespaceHandle {
                inner: Inner::Dynamic(Arc::new(DynamicNs::new(oracle, None))),
            },
        )
    }

    /// Registers (or replaces) a **durable** dynamic namespace backed
    /// by `dir`. A fresh directory is initialized with `seed` as
    /// generation 0; a directory with history ignores `seed` and
    /// recovers checkpoint + WAL instead — replaying the valid log
    /// prefix (a prefix of the acknowledged ops; a torn tail from a
    /// crash is truncated for good when the appender reopens). Every
    /// later mutation is logged before it is applied.
    /// `rebuild_threshold` overrides the overlay size that arms a
    /// background rebuild (`None` keeps the oracle default).
    pub fn open_durable(
        &self,
        name: &str,
        seed: Dag,
        dir: impl Into<PathBuf>,
        cfg: WalConfig,
        rebuild_threshold: Option<usize>,
    ) -> Result<bool, ServeError> {
        Self::validate_name(name)?;
        let wal = WalDir::open(dir).map_err(ServeError::Wal)?;
        let mut oracle = match wal.recover().map_err(ServeError::Wal)? {
            Some(rec) => {
                let mut oracle = DynamicOracle::new(rec.base);
                let durability = wal
                    .durability(rec.generation, rec.wal_bytes, rec.ops.len() as u64, cfg)
                    .map_err(ServeError::Wal)?;
                oracle.set_durability(Box::new(durability));
                oracle.replay(&rec.ops)?;
                oracle
            }
            None => {
                wal.initialize(&seed).map_err(ServeError::Wal)?;
                let mut oracle = DynamicOracle::new(seed);
                let durability = wal.durability(0, 0, 0, cfg).map_err(ServeError::Wal)?;
                oracle.set_durability(Box::new(durability));
                oracle
            }
        };
        oracle.set_auto_rebuild(false);
        if let Some(threshold) = rebuild_threshold {
            oracle.set_rebuild_threshold(threshold);
        }
        self.insert(
            name,
            NamespaceHandle {
                inner: Inner::Dynamic(Arc::new(DynamicNs::new(oracle, Some(wal)))),
            },
        )
    }

    /// Clones the handle registered under `name`.
    pub fn get(&self, name: &str) -> Option<NamespaceHandle> {
        let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
        map.get(name).cloned()
    }

    /// Drops a namespace. In-flight queries holding its handle finish
    /// unaffected.
    pub fn remove(&self, name: &str) -> bool {
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        map.remove(name).is_some()
    }

    /// Forces every durable namespace's WAL tail to stable storage.
    /// The group-commit policy only fires inside appends, so without
    /// this the last records of a burst sit unsynced until the next
    /// mutation arrives — the server calls it on graceful shutdown to
    /// close that window. Returns each namespace whose sync failed
    /// (those tails remain at the mercy of the OS page cache).
    pub fn sync_all(&self) -> Vec<(String, ServeError)> {
        self.handles()
            .into_iter()
            .filter_map(|(name, h)| h.sync_durability().err().map(|e| (name, e)))
            .collect()
    }

    /// Every `(name, handle)` pair, sorted by name — the metrics
    /// collector's iteration order, so exposition output is stable.
    pub(crate) fn handles(&self) -> Vec<(String, NamespaceHandle)> {
        let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
        let mut handles: Vec<(String, NamespaceHandle)> = map
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect();
        handles.sort_by(|a, b| a.0.cmp(&b.0));
        handles
    }

    /// Every namespace, sorted by name for deterministic `LIST` replies.
    pub fn list(&self) -> Vec<NamespaceInfo> {
        let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
        let mut infos: Vec<NamespaceInfo> = map
            .iter()
            .map(|(name, h)| NamespaceInfo {
                name: name.clone(),
                kind: h.kind(),
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of registered namespaces.
    pub fn len(&self) -> usize {
        let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
        map.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{Dag, DiGraph};

    fn frozen_fixture() -> Registry {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        registry
    }

    #[test]
    fn frozen_namespace_answers_and_rejects_mutation() {
        let registry = frozen_fixture();
        let ns = registry.get("g").unwrap();
        assert_eq!(ns.kind(), NamespaceKind::Frozen);
        assert!(ns.reach(0, 3).unwrap());
        assert!(!ns.reach(3, 0).unwrap());
        assert!(ns.reach(1, 0).unwrap(), "inside the SCC");
        assert!(matches!(
            ns.add_edge("g", 3, 4),
            Err(ServeError::FrozenNamespace(_))
        ));
        assert!(matches!(
            ns.remove_edge("g", 0, 1),
            Err(ServeError::FrozenNamespace(_))
        ));
    }

    #[test]
    fn out_of_range_vertices_are_errors_not_panics() {
        let registry = frozen_fixture();
        let ns = registry.get("g").unwrap();
        assert!(matches!(
            ns.reach(0, 5),
            Err(ServeError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert!(matches!(
            ns.reach_batch(&[(0, 1), (9, 0)], 2),
            Err(ServeError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn dynamic_namespace_mutates_and_counts() {
        let registry = Registry::new();
        let dag = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        registry
            .insert_dynamic("d", DynamicOracle::new(dag))
            .unwrap();
        let ns = registry.get("d").unwrap();
        assert!(!ns.reach(0, 3).unwrap());
        ns.add_edge("d", 1, 2).unwrap();
        assert!(ns.reach(0, 3).unwrap());
        assert!(matches!(
            ns.add_edge("d", 3, 0),
            Err(ServeError::Graph(GraphError::Cycle { .. }))
        ));
        assert!(ns.remove_edge("d", 1, 2).unwrap());
        assert!(!ns.reach(0, 3).unwrap());
        assert!(!ns.remove_edge("d", 1, 2).unwrap(), "already gone");
        let stats = ns.stats();
        assert_eq!(stats.kind, NamespaceKind::Dynamic);
        assert_eq!(stats.vertices, 4);
        assert!(stats.queries >= 3);
    }

    #[test]
    fn batch_matches_singles() {
        let registry = frozen_fixture();
        let ns = registry.get("g").unwrap();
        let pairs: Vec<(u32, u32)> = (0..5).flat_map(|u| (0..5).map(move |v| (u, v))).collect();
        let batch = ns.reach_batch(&pairs, 3).unwrap();
        for (&(u, v), &got) in pairs.iter().zip(&batch) {
            assert_eq!(got, ns.reach(u, v).unwrap(), "({u},{v})");
        }
    }

    #[test]
    fn replace_and_remove() {
        let registry = frozen_fixture();
        let old = registry.get("g").unwrap();
        let g2 = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(registry.insert_frozen("g", Oracle::new(&g2)).unwrap());
        assert_eq!(registry.get("g").unwrap().num_vertices(), 2);
        // The old handle still answers against its own snapshot.
        assert_eq!(old.num_vertices(), 5);
        assert!(registry.remove("g"));
        assert!(registry.get("g").is_none());
        assert!(!registry.remove("g"));
        assert!(registry.is_empty());
    }

    #[test]
    fn names_validated_and_listed_sorted() {
        let registry = Registry::new();
        let g = DiGraph::from_edges(1, &[]).unwrap();
        assert!(matches!(
            registry.insert_frozen("", Oracle::new(&g)),
            Err(ServeError::InvalidName(_))
        ));
        assert!(matches!(
            registry.insert_frozen(&"x".repeat(300), Oracle::new(&g)),
            Err(ServeError::InvalidName(_))
        ));
        registry.insert_frozen("zeta", Oracle::new(&g)).unwrap();
        registry
            .insert_dynamic(
                "alpha",
                DynamicOracle::new(Dag::from_edges(1, &[]).unwrap()),
            )
            .unwrap();
        let names: Vec<String> = registry.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(registry.len(), 2);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static CALL: AtomicU64 = AtomicU64::new(0);
        let call = CALL.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "hoplite-registry-{tag}-{}-{call}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn background_rebuild_folds_overlay_and_counts() {
        let registry = Registry::new();
        let dag = Dag::from_edges(6, &[(0, 1)]).unwrap();
        let oracle = DynamicOracle::with_config(dag, hoplite_core::DlConfig::default(), 3);
        registry.insert_dynamic("d", oracle).unwrap();
        let ns = registry.get("d").unwrap();
        for (u, v) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
            ns.add_edge("d", u, v).unwrap();
        }
        ns.quiesce("d");
        assert!(ns.rebuilds_completed() >= 1, "threshold crossed twice");
        assert!(!ns.rebuild_in_flight());
        let stats = ns.stats();
        assert!(
            stats.pending_inserts < 3,
            "overlay folded back under threshold: {stats:?}"
        );
        assert_eq!(stats.rebuilds, ns.rebuilds_completed());
        assert!(ns.reach(0, 5).unwrap());
        assert!(!ns.reach(5, 0).unwrap());
        let mut report = MetricsReport::default();
        ns.fold_metrics("d", &mut report);
        assert_eq!(
            report.counter("ns_rebuilds_total{ns=\"d\"}"),
            Some(ns.rebuilds_completed())
        );
        assert_eq!(report.counter("ns_rebuild_in_flight{ns=\"d\"}"), Some(0));
        let hist = report
            .histogram("ns_rebuild_duration_ns{ns=\"d\"}")
            .expect("rebuild histogram folded");
        assert_eq!(hist.count, ns.rebuilds_completed());
    }

    #[test]
    fn durable_namespace_survives_reopen() {
        let dir = temp_dir("reopen");
        let seed = Dag::from_edges(5, &[(0, 1)]).unwrap();
        {
            let registry = Registry::new();
            registry
                .open_durable(
                    "d",
                    seed.clone(),
                    &dir,
                    hoplite_core::WalConfig::sync_every_record(),
                    None,
                )
                .unwrap();
            let ns = registry.get("d").unwrap();
            ns.add_edge("d", 1, 2).unwrap();
            ns.add_edge("d", 2, 3).unwrap();
            ns.remove_edge("d", 0, 1).unwrap();
            let stats = ns.stats();
            assert_eq!(stats.wal_records, 3, "{stats:?}");
            assert_eq!(stats.wal_bytes, 3 * 17, "{stats:?}");
            // Dropped without any checkpoint rotation: recovery must
            // replay the log.
        }
        {
            let registry = Registry::new();
            // A different seed proves the on-disk history wins.
            registry
                .open_durable(
                    "d",
                    Dag::from_edges(5, &[]).unwrap(),
                    &dir,
                    hoplite_core::WalConfig::default(),
                    None,
                )
                .unwrap();
            let ns = registry.get("d").unwrap();
            assert!(ns.reach(1, 3).unwrap());
            assert!(!ns.reach(0, 2).unwrap(), "removal replayed");
            assert_eq!(ns.stats().wal_records, 3, "records_total survives");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_rebuild_rotates_checkpoint_and_truncates_log() {
        let dir = temp_dir("rotate");
        let registry = Registry::new();
        registry
            .open_durable(
                "d",
                Dag::from_edges(6, &[]).unwrap(),
                &dir,
                hoplite_core::WalConfig::sync_every_record(),
                Some(3),
            )
            .unwrap();
        {
            let ns = registry.get("d").unwrap();
            for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
                ns.add_edge("d", u, v).unwrap();
            }
            ns.quiesce("d");
            let after = ns.stats();
            assert!(ns.rebuilds_completed() >= 1, "threshold armed the worker");
            assert!(after.pending_inserts < 3, "{after:?}");
            // The rotation truncated the log down to the live overlay:
            // exactly one record per still-pending op.
            assert_eq!(
                after.wal_bytes,
                (after.pending_inserts + after.pending_deletions) * 17
            );
            assert_eq!(after.wal_records, 5, "records_total is monotonic");
            assert!(ns.reach(0, 5).unwrap());
        }
        // The rotation is durable: a reopen starts from the new
        // checkpoint plus the (possibly empty) rotated overlay log.
        let registry2 = Registry::new();
        registry2
            .open_durable(
                "d",
                Dag::from_edges(6, &[]).unwrap(),
                &dir,
                hoplite_core::WalConfig::default(),
                None,
            )
            .unwrap();
        let ns = registry2.get("d").unwrap();
        assert!(ns.reach(0, 5).unwrap());
        assert!(!ns.reach(5, 0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_queries_count_batch_pairs() {
        let registry = frozen_fixture();
        let ns = registry.get("g").unwrap();
        ns.reach(0, 1).unwrap();
        ns.reach_batch(&[(0, 1), (1, 2), (2, 3)], 1).unwrap();
        assert_eq!(ns.stats().queries, 4);
    }

    #[test]
    fn stats_stage_counters_account_every_frozen_query() {
        let registry = frozen_fixture();
        let ns = registry.get("g").unwrap();
        let pairs: Vec<(u32, u32)> = (0..5).flat_map(|u| (0..5).map(move |v| (u, v))).collect();
        ns.reach_batch(&pairs, 2).unwrap();
        ns.reach(4, 0).unwrap();
        let stats = ns.stats();
        assert_eq!(stats.queries, 26);
        assert_eq!(
            stats.filter_hits + stats.signature_hits + stats.merge_runs,
            26,
            "every query must die in exactly one stage: {stats:?}"
        );
        assert!(stats.filter_hits > 0, "{stats:?}");
        assert!(
            stats.signature_bytes > 0,
            "frozen namespaces report signature bytes"
        );
    }
}
