//! `hoplited` — the hoplite reachability query daemon.
//!
//! ```text
//! hoplited serve --listen 127.0.0.1:7411 \
//!     --frozen web=web.el --index cit=cit.hopl --dynamic onto=onto.gra
//! hoplited bench [--vertices N] [--edges M] [--queries Q] [--clients C] [--batch K]
//! hoplited smoke
//! ```
//!
//! * `serve` loads graphs (`--frozen`, edge-list or `.gra` via
//!   `hoplite_graph::io`), prebuilt `HOPL` indexes (`--index`, via
//!   `hoplite_core::persist`), and mutable DAGs (`--dynamic`), then
//!   serves them until killed.
//! * `bench` builds a synthetic power-law graph, serves it on an
//!   ephemeral loopback port, replays a concurrent client workload
//!   over the real wire protocol, and reports QPS.
//! * `smoke` starts a server on port 0, runs PING / REACH / STATS /
//!   LIST / dynamic mutations against it, shuts down, and exits 0 —
//!   the CI liveness check for the serving path.

use std::fs::File;
use std::io::{BufReader, Read};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hoplite_core::{BuildTrace, DlConfig, DynamicOracle, HistogramSnapshot, Oracle, WalConfig};
use hoplite_graph::gen::{self, Rng};
use hoplite_graph::{io as gio, Dag, DiGraph};
use hoplite_server::{
    loadgen, log_error, log_info, Client, ClientConfig, ClientError, LoadSpec, Registry, ServeMode,
    Server, ServerConfig,
};

const USAGE: &str = "\
hoplited — hoplite reachability query daemon

USAGE:
    hoplited serve --listen ADDR [OPTIONS] [NAMESPACES]
    hoplited bench [OPTIONS]
    hoplited smoke
    hoplited help

SERVE:
    --listen ADDR          bind address, e.g. 127.0.0.1:7411 (port 0 = ephemeral)
    --reactor              epoll/kqueue event loop instead of the thread
                           pool: one thread multiplexes every socket and
                           coalesces queries across connections; clients
                           are never refused below the fd limit
    --workers N            connection-handler threads (thread-pool mode;
                           default: cores)
    --batch-threads N      fan-out width for BATCH queries (default: cores, max 8)
    --frozen NAME=FILE     build a frozen namespace from a graph file
                           (.gra adjacency, anything else = edge list)
    --index NAME=FILE      load a frozen namespace from a HOPL index
                           (v1 streaming or v3 arena; Oracle::open)
    --mmap                 serve v3 indexes zero-copy out of an mmap
                           instead of reading them onto the heap
                           (position-independent: applies to every --index)
    --prefault             walk the mapping at open so first queries
                           don't page-fault (pairs with --mmap)
    --dynamic NAME=FILE    load a DAG file as a mutable namespace
    --wal-dir DIR          make every dynamic namespace durable: edge
                           mutations hit a checksummed write-ahead log
                           in DIR/NAME before they are acknowledged,
                           background rebuilds checkpoint + rotate it,
                           and a restart replays checkpoint + WAL (a
                           namespace with history ignores its FILE)
    --metrics-addr ADDR    also serve Prometheus-style text on
                           http://ADDR/metrics (HTTP/1.0 GET; port 0 =
                           ephemeral) — counters, latency quantiles,
                           and the slow-query log as comment lines —
                           plus /healthz (process live) and /readyz
                           (200 once loading/WAL replay finishes and no
                           rebuild is wedged; 503 before)
    --trace-out FILE       write one JSON build-trace line per --frozen
                           namespace (SCC/order/distribute/freeze span
                           timings and the per-hop labeling histogram)
    --request-deadline MS  refuse frames older than MS with a typed
                           DEADLINE_EXCEEDED reply instead of serving
                           stale work (default: off)
    --idle-timeout SECS    reap connections idle this long (default: off)
    --shed-inflight N      admission high-water mark: past N in-flight
                           frames, shed read queries with OVERLOADED +
                           retry-after (mutations are never shed)
    --shed-pairs N         reactor per-tick coalesced-pair budget; reads
                           past it shed with OVERLOADED (default: off)
    --queue-limit N        refuse new connections once N are waiting for
                           a pool worker (thread-pool mode; default:
                           worker count)
    --rebuild-stall SECS   /readyz reports 503 when a namespace has been
                           stuck in a background rebuild this long
                           (default 300)

BENCH (wire-level throughput on a synthetic power-law graph):
    --vertices N           graph size            (default 50000)
    --edges M              edge count            (default 150000)
    --queries Q            total queries         (default 200000)
    --clients C            concurrent clients    (default 4)
    --batch K              pairs per frame       (default 512; 1 = single REACH)
    --workers N            server worker threads (default: cores)
    --reactor              benchmark the reactor serving loop
    --connections LIST     comma-separated connection counts to sweep,
                           e.g. 100,1000,10000 — each step holds that
                           many sockets open and drives pipelined load
                           through all of them via a bounded worker pool
                           (loadgen), instead of one thread per client
    --pipeline D           frames in flight per connection (sweep mode;
                           default 8)
    --threads W            loadgen worker threads (sweep mode; default:
                           cores, max 8)
    --addr HOST:PORT       drive an already-running server (namespace
                           \"bench\", pairs drawn from 0..--vertices)
                           instead of spawning one in-process — the way
                           to push a 10k-socket sweep when one process's
                           fd limit cannot hold both ends
    --overload N           overload drill: calibrate capacity with an
                           unthrottled run, then re-serve with admission
                           budgets sized to admit ~1/N of the offered
                           in-flight load and drive the same closed-loop
                           traffic — reporting shed %, accepted-query
                           p99, and goodput (with --reactor: the reactor
                           loop sheds; without: the thread-pool path)

SMOKE:
    self-contained serving-path check: ephemeral server, PING, REACH,
    BATCH, STATS, LIST, dynamic ADD/REMOVE_EDGE, METRICS, a /metrics
    scrape, graceful shutdown.

Logging goes to stderr; set HOPLITE_LOG=debug|info|warn|error
(default info).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `hoplited help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            log_error!("hoplited", "{message}");
            ExitCode::from(2)
        }
    }
}

/// Splits `NAME=FILE`.
fn split_spec(spec: &str) -> Result<(&str, &str), String> {
    spec.split_once('=')
        .filter(|(name, path)| !name.is_empty() && !path.is_empty())
        .ok_or_else(|| format!("expected NAME=FILE, got {spec:?}"))
}

fn load_graph(path: &str) -> Result<DiGraph, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let graph = if path.ends_with(".gra") {
        gio::read_gra(reader)
    } else {
        gio::read_edge_list(reader)
    };
    graph.map_err(|e| format!("parse {path}: {e}"))
}

fn parse_num(flag: &str, value: Option<&String>) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<usize>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut listen: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut wal_dir: Option<String> = None;
    let mut config = ServerConfig::default();
    let registry = Arc::new(Registry::new());
    let mut open_opts = hoplite_core::OpenOptions {
        mmap: false,
        ..hoplite_core::OpenOptions::default()
    };
    enum Spec {
        Frozen(String, String),
        Index(String, String),
        Dynamic(String, String),
    }

    // Pass 1: parse every flag before loading anything, so `--mmap` /
    // `--prefault` apply to all `--index` specs regardless of where
    // they appear on the command line.
    let mut specs: Vec<Spec> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => listen = Some(it.next().ok_or("--listen needs a value")?.clone()),
            "--metrics-addr" => {
                metrics_addr = Some(it.next().ok_or("--metrics-addr needs a value")?.clone())
            }
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a value")?.clone())
            }
            "--wal-dir" => wal_dir = Some(it.next().ok_or("--wal-dir needs a value")?.clone()),
            "--reactor" => config.mode = ServeMode::Reactor,
            "--workers" => config.workers = parse_num("--workers", it.next()).map(|n| n.max(1))?,
            "--batch-threads" => {
                config.batch_threads = parse_num("--batch-threads", it.next()).map(|n| n.max(1))?
            }
            "--mmap" => open_opts.mmap = true,
            "--prefault" => open_opts.prefault = true,
            "--request-deadline" => {
                config.request_deadline = Some(Duration::from_millis(parse_num(
                    "--request-deadline",
                    it.next(),
                )? as u64))
            }
            "--idle-timeout" => {
                config.idle_timeout = Some(Duration::from_secs(parse_num(
                    "--idle-timeout",
                    it.next(),
                )? as u64))
            }
            "--shed-inflight" => {
                config.shed_inflight_hwm =
                    Some(parse_num("--shed-inflight", it.next()).map(|n| n.max(1))?)
            }
            "--shed-pairs" => {
                config.shed_coalesced_pairs =
                    Some(parse_num("--shed-pairs", it.next()).map(|n| n.max(1))?)
            }
            "--queue-limit" => config.pool_queue_limit = parse_num("--queue-limit", it.next())?,
            "--rebuild-stall" => registry.set_rebuild_stall_threshold(Duration::from_secs(
                parse_num("--rebuild-stall", it.next())? as u64,
            )),
            "--frozen" => {
                let (name, path) = split_spec(it.next().ok_or("--frozen needs NAME=FILE")?)?;
                specs.push(Spec::Frozen(name.to_owned(), path.to_owned()));
            }
            "--index" => {
                let (name, path) = split_spec(it.next().ok_or("--index needs NAME=FILE")?)?;
                specs.push(Spec::Index(name.to_owned(), path.to_owned()));
            }
            "--dynamic" => {
                let (name, path) = split_spec(it.next().ok_or("--dynamic needs NAME=FILE")?)?;
                specs.push(Spec::Dynamic(name.to_owned(), path.to_owned()));
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }

    // Bind listeners *before* loading: the wire and metrics endpoints
    // come up immediately so orchestrators can probe them, but the
    // registry is marked not-ready — data requests get a typed
    // NOT_READY reply (with a retry-after hint) until every namespace,
    // including WAL replay for durable ones, has landed. /readyz on the
    // metrics listener flips 503 → 200 at exactly that point.
    let listen = listen.ok_or("serve needs --listen ADDR")?;
    registry.set_ready(false);
    let mut handle = Server::bind(listen.as_str(), Arc::clone(&registry), config.clone())
        .map_err(|e| format!("bind {listen}: {e}"))?;
    println!("hoplited listening on {}", handle.local_addr());
    if let Some(addr) = &metrics_addr {
        let bound = handle
            .serve_metrics(addr.as_str())
            .map_err(|e| format!("bind metrics {addr}: {e}"))?;
        log_info!("serve", "metrics exposition on http://{bound}/metrics");
    }

    // Pass 2: load namespaces in command-line order.
    let mut loaded = 0usize;
    let mut traces: Vec<String> = Vec::new();
    for spec in specs {
        match spec {
            Spec::Frozen(name, path) => {
                let graph = load_graph(&path)?;
                let t = Instant::now();
                let oracle = if trace_out.is_some() {
                    let trace = BuildTrace::new();
                    let oracle = Oracle::with_config_traced(&graph, &DlConfig::default(), &trace);
                    traces.push(trace.to_json(&name));
                    oracle
                } else {
                    Oracle::new(&graph)
                };
                log_info!(
                    "serve",
                    "{name}: built frozen oracle from {path} \
                     ({} vertices, {} edges, {} label entries, {:.0} ms)",
                    graph.num_vertices(),
                    graph.num_edges(),
                    oracle.label_entries(),
                    t.elapsed().as_secs_f64() * 1e3,
                );
                registry
                    .insert_frozen(&name, oracle)
                    .map_err(|e| e.to_string())?;
                loaded += 1;
            }
            Spec::Index(name, path) => {
                let t = Instant::now();
                let oracle = Oracle::open_with(&path, &open_opts)
                    .map_err(|e| format!("open index {path}: {e}"))?;
                let memory = oracle.memory();
                log_info!(
                    "serve",
                    "{name}: opened prebuilt index from {path} in {:.1} ms \
                     ({} vertices, {} components, {} label entries, backend {}, \
                     {} heap B + {} mapped B)",
                    t.elapsed().as_secs_f64() * 1e3,
                    oracle.num_vertices(),
                    oracle.num_components(),
                    oracle.label_entries(),
                    oracle.backend(),
                    memory.heap_bytes,
                    memory.mapped_bytes,
                );
                registry
                    .insert_frozen(&name, oracle)
                    .map_err(|e| e.to_string())?;
                loaded += 1;
            }
            Spec::Dynamic(name, path) => {
                let graph = load_graph(&path)?;
                let dag = Dag::new(graph)
                    .map_err(|e| format!("{path}: dynamic namespaces need a DAG: {e}"))?;
                match &wal_dir {
                    Some(root) => {
                        let dir = std::path::Path::new(root).join(&name);
                        registry
                            .open_durable(&name, dag, &dir, WalConfig::default(), None)
                            .map_err(|e| format!("{name}: wal dir {}: {e}", dir.display()))?;
                        let ns = registry.get(&name).expect("just inserted");
                        let stats = ns.stats();
                        log_info!(
                            "serve",
                            "{name}: durable dynamic oracle in {} \
                             ({} vertices, {} replayed WAL record(s), seed {path})",
                            dir.display(),
                            stats.vertices,
                            stats.wal_records,
                        );
                    }
                    None => {
                        log_info!(
                            "serve",
                            "{name}: built dynamic oracle from {path} ({} vertices, {} edges)",
                            dag.num_vertices(),
                            dag.num_edges(),
                        );
                        registry
                            .insert_dynamic(&name, DynamicOracle::new(dag))
                            .map_err(|e| e.to_string())?;
                    }
                }
                loaded += 1;
            }
        }
    }
    if let Some(path) = &trace_out {
        let mut body = traces.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(path, body).map_err(|e| format!("write {path}: {e}"))?;
        log_info!("serve", "wrote {} build trace(s) to {path}", traces.len());
    }

    // Everything (including WAL replay, which `open_durable` runs
    // synchronously) is loaded: open the gates.
    registry.set_ready(true);
    match config.mode {
        ServeMode::ThreadPool => log_info!(
            "serve",
            "{loaded} namespace(s), {} workers, batch fan-out {}",
            config.workers,
            config.batch_threads
        ),
        ServeMode::Reactor => log_info!(
            "serve",
            "{loaded} namespace(s), reactor event loop, batch fan-out {}",
            config.batch_threads
        ),
    }
    // Serve until killed; the accept/worker threads do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut vertices = 50_000usize;
    let mut edges = 150_000usize;
    let mut queries = 200_000usize;
    let mut clients = 4usize;
    let mut batch = 512usize;
    let mut connections: Option<Vec<usize>> = None;
    let mut pipeline = 8usize;
    let mut threads = cores.clamp(1, 8);
    let mut addr: Option<String> = None;
    let mut overload: Option<usize> = None;
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--vertices" => vertices = parse_num("--vertices", it.next()).map(|n| n.max(2))?,
            "--edges" => edges = parse_num("--edges", it.next())?,
            "--queries" => queries = parse_num("--queries", it.next()).map(|n| n.max(1))?,
            "--clients" => clients = parse_num("--clients", it.next()).map(|n| n.max(1))?,
            "--batch" => batch = parse_num("--batch", it.next()).map(|n| n.max(1))?,
            "--workers" => config.workers = parse_num("--workers", it.next()).map(|n| n.max(1))?,
            "--reactor" => config.mode = ServeMode::Reactor,
            "--pipeline" => pipeline = parse_num("--pipeline", it.next()).map(|n| n.max(1))?,
            "--threads" => threads = parse_num("--threads", it.next()).map(|n| n.max(1))?,
            "--connections" => {
                let list = it.next().ok_or("--connections needs a value")?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                connections = Some(parsed.map_err(|e| format!("--connections: {e}"))?);
            }
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--overload" => overload = Some(parse_num("--overload", it.next()).map(|n| n.max(2))?),
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }

    if let Some(factor) = overload {
        let conns = connections
            .as_deref()
            .and_then(|s| s.first().copied())
            .unwrap_or(64);
        return bench_overload(
            vertices, edges, queries, batch, conns, pipeline, threads, factor, config,
        );
    }
    if let Some(addr) = addr {
        let sweep = connections.unwrap_or_else(|| vec![100]);
        let addr: std::net::SocketAddr =
            addr.parse().map_err(|e| format!("--addr {addr:?}: {e}"))?;
        run_sweep(
            addr, "external", vertices, queries, batch, &sweep, pipeline, threads, None,
        )?;
        return Ok(());
    }
    if let Some(sweep) = connections {
        return bench_sweep(
            vertices, edges, queries, batch, &sweep, pipeline, threads, config,
        );
    }

    log_info!(
        "bench",
        "generating power-law DAG: {vertices} vertices, {edges} edges"
    );
    let dag = gen::power_law_dag(vertices, edges, 42);
    let t = Instant::now();
    let oracle = Oracle::new(&dag.into_graph());
    log_info!(
        "bench",
        "oracle built in {:.0} ms ({} label entries)",
        t.elapsed().as_secs_f64() * 1e3,
        oracle.label_entries(),
    );

    let registry = Arc::new(Registry::new());
    registry
        .insert_frozen("bench", oracle)
        .map_err(|e| e.to_string())?;
    // Every client (plus the stats probe) holds a connection for the
    // whole run; the worker pool must cover them all.
    config.workers = config.workers.max(clients + 2);
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&registry), config)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    log_info!(
        "bench",
        "serving on {addr}; {clients} clients × {queries} queries, batch {batch}"
    );

    let per_client = queries / clients;
    let start = Instant::now();
    let totals: Vec<(u64, u64, HistogramSnapshot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with(addr, ClientConfig::reconnecting()).expect("connect");
                    // Reads are idempotent, so a dropped socket (server
                    // restart) costs one reconnect + reissue, not the
                    // whole benchmark.
                    fn retrying<T>(
                        client: &mut Client,
                        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
                    ) -> T {
                        match op(client) {
                            Ok(v) => v,
                            Err(ClientError::Io(_)) => {
                                client.reconnect().expect("reconnect");
                                op(client).expect("reissue after reconnect")
                            }
                            Err(e) => panic!("bench query: {e}"),
                        }
                    }
                    let mut rng = Rng::new(0xB0B0 + c as u64);
                    let mut positive = 0u64;
                    let mut sent = 0u64;
                    let mut latency = HistogramSnapshot::empty();
                    while (sent as usize) < per_client {
                        let k = batch.min(per_client - sent as usize);
                        let pairs: Vec<(u32, u32)> = (0..k)
                            .map(|_| {
                                (
                                    rng.gen_index(vertices) as u32,
                                    rng.gen_index(vertices) as u32,
                                )
                            })
                            .collect();
                        let frame_started = Instant::now();
                        if k == 1 {
                            let (u, v) = pairs[0];
                            if retrying(&mut client, |cl| cl.reach("bench", u, v)) {
                                positive += 1;
                            }
                        } else {
                            let answers =
                                retrying(&mut client, |cl| cl.reach_batch("bench", &pairs));
                            positive += answers.iter().filter(|&&b| b).count() as u64;
                        }
                        latency.record(frame_started.elapsed().as_nanos() as u64);
                        sent += k as u64;
                    }
                    (sent, positive, latency)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = start.elapsed();

    let sent: u64 = totals.iter().map(|(s, _, _)| s).sum();
    let positive: u64 = totals.iter().map(|(_, p, _)| p).sum();
    let mut latency = HistogramSnapshot::empty();
    for (_, _, l) in &totals {
        latency.merge(l);
    }
    let qps = sent as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut probe = Client::connect(addr).map_err(|e| e.to_string())?;
    let stats = probe.stats("bench").map_err(|e| e.to_string())?;
    println!(
        "bench: {sent} queries in {:.1} ms over {clients} clients (batch {batch}) → {:.0} queries/s \
         ({positive} positive; server counted {} queries; frame latency {})",
        elapsed.as_secs_f64() * 1e3,
        qps,
        stats.queries,
        fmt_latency(&latency),
    );
    handle.shutdown();
    Ok(())
}

/// `p50/p99/p99.9 = a/b/c µs` for a latency snapshot.
fn fmt_latency(latency: &HistogramSnapshot) -> String {
    format!(
        "p50/p99/p99.9 = {:.1}/{:.1}/{:.1} µs",
        latency.p50() as f64 / 1e3,
        latency.p99() as f64 / 1e3,
        latency.p999() as f64 / 1e3,
    )
}

/// The connection-count sweep: builds one oracle, serves it, then for
/// each requested connection count holds that many sockets open and
/// drives pipelined load through *all* of them with a bounded worker
/// pool — measuring how wire QPS behaves as sockets grow from hundreds
/// to tens of thousands (the reactor's reason to exist; the thread
/// pool refuses anything beyond its worker count, so sweeping it past
/// that is only meaningful with `--workers` raised to match).
#[allow(clippy::too_many_arguments)]
fn bench_sweep(
    vertices: usize,
    edges: usize,
    queries: usize,
    batch: usize,
    sweep: &[usize],
    pipeline: usize,
    threads: usize,
    mut config: ServerConfig,
) -> Result<(), String> {
    log_info!(
        "bench",
        "generating power-law DAG: {vertices} vertices, {edges} edges"
    );
    let dag = gen::power_law_dag(vertices, edges, 42);
    let t = Instant::now();
    let oracle = Oracle::new(&dag.into_graph());
    log_info!(
        "bench",
        "oracle built in {:.0} ms ({} label entries)",
        t.elapsed().as_secs_f64() * 1e3,
        oracle.label_entries(),
    );
    let registry = Arc::new(Registry::new());
    registry
        .insert_frozen("bench", oracle)
        .map_err(|e| e.to_string())?;
    if config.mode == ServeMode::ThreadPool {
        // Give the pool a fighting chance to hold the sweep's sockets.
        let peak = sweep.iter().copied().max().unwrap_or(0);
        config.workers = config.workers.max(peak + 2);
    }
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&registry), config.clone())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    let mode = match config.mode {
        ServeMode::ThreadPool => "thread-pool",
        ServeMode::Reactor => "reactor",
    };
    run_sweep(
        addr,
        mode,
        vertices,
        queries,
        batch,
        sweep,
        pipeline,
        threads,
        Some(&handle),
    )?;
    handle.shutdown();
    Ok(())
}

/// The overload drill: measure what the server can do unthrottled,
/// then re-serve the same oracle with admission budgets sized so the
/// same closed-loop load offers `factor`× what admission will take —
/// and report how degradation behaved (shed fraction, goodput, and the
/// latency the *accepted* queries saw).
#[allow(clippy::too_many_arguments)]
fn bench_overload(
    vertices: usize,
    edges: usize,
    queries: usize,
    batch: usize,
    conns: usize,
    pipeline: usize,
    threads: usize,
    factor: usize,
    mut config: ServerConfig,
) -> Result<(), String> {
    log_info!(
        "bench",
        "generating power-law DAG: {vertices} vertices, {edges} edges"
    );
    let dag = gen::power_law_dag(vertices, edges, 42);
    let oracle = Oracle::new(&dag.into_graph());
    let registry = Arc::new(Registry::new());
    registry
        .insert_frozen("bench", oracle)
        .map_err(|e| e.to_string())?;
    if config.mode == ServeMode::ThreadPool {
        config.workers = config.workers.max(conns + 2);
    }
    let mode = match config.mode {
        ServeMode::ThreadPool => "thread-pool",
        ServeMode::Reactor => "reactor",
    };
    let spec = |addr: std::net::SocketAddr, queries: u64, seed: u64| LoadSpec {
        addr,
        ns: "bench".into(),
        vertices: vertices as u32,
        connections: conns,
        threads,
        pipeline_depth: pipeline,
        batch,
        queries,
        seed,
    };

    // Phase 1: calibrate. No budgets — whatever this run sustains is
    // the capacity estimate the overload phase is a multiple of.
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&registry), config.clone())
        .map_err(|e| format!("bind: {e}"))?;
    let calib = loadgen::run_load(&spec(
        handle.local_addr(),
        (queries as u64 / 4).max(1),
        0xCA11,
    ))
    .map_err(|e| format!("calibration: {e}"))?;
    handle.shutdown();
    let capacity = calib.qps();
    println!(
        "bench[overload/{mode}]: capacity ≈ {capacity:.0} queries/s unthrottled \
         (reply {})",
        fmt_latency(&calib.latency),
    );

    // Phase 2: overload. The same closed-loop load keeps conns ×
    // pipeline frames in flight; budgets admit ~1/factor of that, so
    // the offered load is factor× what admission accepts. Reads past
    // the mark shed with OVERLOADED; a generous deadline exercises the
    // aging path without dominating the refusals. The high-water mark
    // scales to each mode's queue: the reactor counts frames in flight
    // across every connection per tick, the thread pool per connection.
    let inflight = conns * pipeline;
    config.shed_inflight_hwm = Some(match config.mode {
        ServeMode::Reactor => (inflight / factor).max(1),
        ServeMode::ThreadPool => (pipeline / factor).max(1),
    });
    config.shed_coalesced_pairs = Some(((inflight * batch) / factor).max(1));
    config.request_deadline = Some(Duration::from_secs(1));
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&registry), config)
        .map_err(|e| format!("bind: {e}"))?;
    let report = loadgen::run_load(&spec(handle.local_addr(), queries as u64, 0x0BAD))
        .map_err(|e| format!("overload run: {e}"))?;
    println!(
        "bench[overload/{mode}]: {factor}x budgets → goodput {:.0} queries/s \
         ({:.1}% of capacity), shed {:.1}% ({} shed, {} deadline-expired, {} errors), \
         accepted reply {}",
        report.qps(),
        100.0 * report.qps() / capacity.max(f64::MIN_POSITIVE),
        100.0 * report.shed_fraction(),
        report.shed,
        report.deadline_exceeded,
        report.errors,
        fmt_latency(&report.latency),
    );
    println!(
        "bench[overload/{mode}]: server counters: {} frames shed, {} deadline-exceeded, \
         {} connections reaped",
        handle.frames_shed(),
        handle.deadlines_exceeded(),
        handle.connections_reaped(),
    );
    handle.shutdown();
    Ok(())
}

/// Runs the connection-count sweep against `addr`, printing one line
/// per step; coalescing counters are reported when the server handle
/// is in-process.
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    addr: std::net::SocketAddr,
    mode: &str,
    vertices: usize,
    queries: usize,
    batch: usize,
    sweep: &[usize],
    pipeline: usize,
    threads: usize,
    handle: Option<&hoplite_server::ServerHandle>,
) -> Result<(), String> {
    log_info!(
        "bench",
        "{mode} server on {addr}; sweep {sweep:?} connections, \
         pipeline {pipeline}, batch {batch}, {threads} loadgen threads"
    );
    for &conns in sweep {
        let spec = LoadSpec {
            addr,
            ns: "bench".into(),
            vertices: vertices as u32,
            connections: conns,
            threads,
            pipeline_depth: pipeline,
            batch,
            queries: queries as u64,
            seed: 0xB0B0 ^ conns as u64,
        };
        let report = loadgen::run_load(&spec).map_err(|e| format!("{conns} conns: {e}"))?;
        let coalesced = match handle {
            Some(h) => format!(
                ", coalesced {} frames over {} calls",
                h.frames_coalesced(),
                h.coalesce_calls()
            ),
            None => String::new(),
        };
        println!(
            "bench[{mode}]: {:>6} conns → {:>12.0} queries/s \
             ({} queries in {:.1} ms, {} errors, reply {}{coalesced})",
            report.connections,
            report.qps(),
            report.queries,
            report.elapsed.as_secs_f64() * 1e3,
            report.errors,
            fmt_latency(&report.latency),
        );
    }
    Ok(())
}

fn cmd_smoke() -> Result<(), String> {
    fn fail(what: &'static str) -> impl Fn(hoplite_server::ClientError) -> String {
        move |e| format!("{what}: {e}")
    }

    // A cyclic digraph for the frozen namespace, a DAG for the dynamic.
    let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)])
        .map_err(|e| e.to_string())?;
    let dag = Dag::from_edges(4, &[(0, 1), (2, 3)]).map_err(|e| e.to_string())?;

    // The dynamic namespace runs durable so the smoke covers the WAL
    // logging path over the wire and the recovery path after shutdown.
    let wal_root = std::env::temp_dir().join(format!("hoplited-smoke-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);

    let registry = Arc::new(Registry::new());
    registry
        .insert_frozen("web", Oracle::new(&g))
        .map_err(|e| e.to_string())?;
    registry
        .open_durable(
            "live",
            dag,
            wal_root.join("live"),
            WalConfig::default(),
            None,
        )
        .map_err(|e| e.to_string())?;

    let mut handle = Server::bind("127.0.0.1:0", registry, ServerConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    let metrics_addr = handle
        .serve_metrics("127.0.0.1:0")
        .map_err(|e| format!("bind metrics: {e}"))?;
    println!("smoke: serving on {addr} (metrics on {metrics_addr})");

    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.ping().map_err(fail("PING"))?;

    let names: Vec<String> = client
        .list()
        .map_err(fail("LIST"))?
        .into_iter()
        .map(|i| i.name)
        .collect();
    if names != ["live", "web"] {
        return Err(format!("LIST returned {names:?}"));
    }

    if !client.reach("web", 0, 4).map_err(fail("REACH"))? {
        return Err("web: 0 must reach 4".into());
    }
    if client.reach("web", 4, 5).map_err(fail("REACH"))? {
        return Err("web: 4 must not reach 5".into());
    }
    let batch = client
        .reach_batch("web", &[(1, 0), (3, 5)])
        .map_err(fail("BATCH"))?;
    if batch != [true, false] {
        return Err(format!("BATCH returned {batch:?}"));
    }

    if client.reach("live", 0, 3).map_err(fail("REACH live"))? {
        return Err("live: 0 must not reach 3 yet".into());
    }
    client.add_edge("live", 1, 2).map_err(fail("ADD_EDGE"))?;
    if !client.reach("live", 0, 3).map_err(fail("REACH live"))? {
        return Err("live: 0 must reach 3 after ADD_EDGE".into());
    }
    if !client
        .remove_edge("live", 1, 2)
        .map_err(fail("REMOVE_EDGE"))?
    {
        return Err("live: REMOVE_EDGE must report the edge existed".into());
    }
    if client.add_edge("web", 0, 3).is_ok() {
        return Err("frozen namespace must reject ADD_EDGE".into());
    }

    let stats = client.stats("web").map_err(fail("STATS"))?;
    if stats.vertices != 6 || stats.queries < 4 {
        return Err(format!("unexpected web stats: {stats:?}"));
    }

    // A deliberately corrupt frame must get an error reply, not a hang
    // or a dropped server.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let garbage = [9u8, 0x02, 0xFF];
        raw.write_all(&(garbage.len() as u32).to_le_bytes())
            .map_err(|e| e.to_string())?;
        raw.write_all(&garbage).map_err(|e| e.to_string())?;
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).map_err(|e| e.to_string())?;
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut payload).map_err(|e| e.to_string())?;
        match hoplite_server::Response::decode(&payload) {
            Ok(hoplite_server::Response::Error(_)) => {}
            other => return Err(format!("corrupt frame produced {other:?}")),
        }
    }
    client.ping().map_err(fail("PING after corrupt frame"))?;

    // METRICS over the wire: the queries above must have been counted,
    // split by outcome, with latency quantiles attached.
    let report = client.metrics("").map_err(fail("METRICS"))?;
    let web_queries = report
        .counter("ns_queries_total{ns=\"web\"}")
        .ok_or("METRICS missing ns_queries_total for web")?;
    if web_queries < 4 {
        return Err(format!("METRICS counted only {web_queries} web queries"));
    }
    if report.counter("server_frames_total").unwrap_or(0) == 0 {
        return Err("METRICS reports zero frames served".into());
    }
    let outcomes: u64 = ["filter", "signature", "merge"]
        .iter()
        .filter_map(|o| {
            report.counter(&format!(
                "ns_query_outcome_total{{ns=\"web\",outcome={o:?}}}"
            ))
        })
        .sum();
    if outcomes == 0 {
        return Err("METRICS outcome counters are all zero".into());
    }
    if report.histogram("server_reply_latency_ns").is_none() {
        return Err("METRICS missing server_reply_latency_ns summary".into());
    }

    // And the same data over the text exposition endpoint.
    {
        use std::io::Write as _;
        let mut http = std::net::TcpStream::connect(metrics_addr).map_err(|e| e.to_string())?;
        http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .map_err(|e| e.to_string())?;
        let mut body = String::new();
        http.read_to_string(&mut body).map_err(|e| e.to_string())?;
        if !body.starts_with("HTTP/1.0 200") {
            return Err(format!("GET /metrics: unexpected status: {body:.60}"));
        }
        if !body.contains("# TYPE ns_queries_total counter") {
            return Err("exposition missing ns_queries_total TYPE line".into());
        }
        let counted = body
            .lines()
            .find(|l| l.starts_with("ns_queries_total{ns=\"web\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or("exposition missing ns_queries_total{ns=\"web\"} sample")?;
        if counted < 4 {
            return Err(format!("exposition counted only {counted} web queries"));
        }
        if !body.contains("reactor_coalesce_batch_pairs") {
            return Err("exposition missing coalesce batch-size summary".into());
        }
    }

    handle.shutdown();

    // Restart-and-replay: the acknowledged mutations (ADD then REMOVE
    // of 1→2) must come back from checkpoint + WAL, not from the seed.
    {
        let recovered = Registry::new();
        recovered
            .open_durable(
                "live",
                Dag::from_edges(4, &[]).map_err(|e| e.to_string())?,
                wal_root.join("live"),
                WalConfig::default(),
                None,
            )
            .map_err(|e| format!("recover live: {e}"))?;
        let ns = recovered
            .get("live")
            .ok_or("recovered registry lost live")?;
        let stats = ns.stats();
        if stats.wal_records != 2 {
            return Err(format!("expected 2 replayed WAL records: {stats:?}"));
        }
        if !ns.reach(2, 3).map_err(|e| e.to_string())? {
            return Err("live after recovery: seeded edge 2→3 lost".into());
        }
        if ns.reach(0, 3).map_err(|e| e.to_string())? {
            return Err("live after recovery: removed edge 1→2 came back".into());
        }
    }
    let _ = std::fs::remove_dir_all(&wal_root);
    println!("smoke: OK");
    Ok(())
}
