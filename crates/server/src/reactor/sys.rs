//! Raw readiness syscalls behind a tiny portable `Poller`.
//!
//! Same discipline as the `hoplite_core::store` mmap shim: we stay a
//! zero-dependency crate by declaring the handful of `extern "C"`
//! prototypes ourselves instead of pulling in `libc`/`mio`. Linux gets
//! `epoll(7)`; macOS and the BSDs get `kqueue(2)`; anything else gets
//! a stub that reports readiness polling as unsupported (the server
//! then refuses `ServeMode::Reactor` at bind time).
//!
//! Both backends are used **level-triggered**: an fd with unread bytes
//! (or writable space) is re-reported every wait, so the reactor never
//! needs to track "maybe more data" state across ticks — missing an
//! event is impossible, at the cost of re-reporting, which the drain
//! loops absorb.

#![allow(dead_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// Portable readiness queue: epoll on Linux, kqueue on BSD/macOS.
pub(crate) struct Poller {
    imp: imp::Poller,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            imp: imp::Poller::new()?,
        })
    }

    /// Registers `fd` with interest in read and/or write readiness;
    /// `token` comes back verbatim in every [`Event`] for it.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.imp.add(fd, token, read, write)
    }

    /// Replaces `fd`'s registered interest.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.imp.modify(fd, token, read, write)
    }

    /// Deregisters `fd`. Closing the fd also deregisters it in both
    /// backends, so this is only needed for fds that stay open.
    pub fn remove(&self, fd: RawFd) {
        self.imp.remove(fd)
    }

    /// Blocks up to `timeout` for readiness, replacing `events` with
    /// whatever arrived (possibly nothing).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        self.imp.wait(events, timeout)
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // epoll_event is packed on x86-64 (and only there) in the kernel
    // ABI; getting this wrong corrupts the token of every event.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut c_void) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut c_void, maxevents: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(crate) struct Poller {
        epfd: c_int,
    }

    // The epoll fd is only touched from the reactor thread, but the
    // handle itself is trivially sendable.
    unsafe impl Send for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest(read, write),
                data: token,
            };
            let p = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent as *mut c_void
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, p) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub fn remove(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, false, false);
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr() as *mut c_void,
                        raw.len() as c_int,
                        ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct first.
                let (bits, data) = (ev.events, ev.data);
                events.push(Event {
                    token: data,
                    // HUP/ERR surface as readable so the read path
                    // observes EOF / the socket error directly.
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    fn interest(read: bool, write: bool) -> u32 {
        let mut bits = EPOLLRDHUP;
        if read {
            bits |= EPOLLIN;
        }
        if write {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_long, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;

    #[repr(C)]
    struct Timespec {
        tv_sec: c_long,
        tv_nsec: c_long,
    }

    // The NetBSD kevent layout differs (64-bit ident/data everywhere);
    // this matches the FreeBSD/macOS ABI, which covers our CI targets.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(crate) struct Poller {
        kq: c_int,
    }

    unsafe impl Send for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { kq })
        }

        fn apply(&self, changes: &[KEvent], tolerate_enoent: bool) -> io::Result<()> {
            let r = unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as c_int,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            };
            if r < 0 {
                let e = io::Error::last_os_error();
                // Deleting a filter that was never added (interest
                // toggling) is fine.
                if !(tolerate_enoent && e.raw_os_error() == Some(2)) {
                    return Err(e);
                }
            }
            Ok(())
        }

        fn set(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mk = |filter: i16, on: bool| KEvent {
                ident: fd as usize,
                filter,
                flags: if on { EV_ADD } else { EV_DELETE },
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            self.apply(&[mk(EVFILT_READ, read)], true)?;
            self.apply(&[mk(EVFILT_WRITE, write)], true)
        }

        pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.set(fd, token, read, write)
        }

        pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.set(fd, token, read, write)
        }

        pub fn remove(&self, fd: RawFd) {
            let _ = self.set(fd, 0, false, false);
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let mut raw = [KEvent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            }; 256];
            let ts = Timespec {
                tv_sec: timeout.as_secs().min(c_long::MAX as u64) as c_long,
                tv_nsec: timeout.subsec_nanos() as c_long,
            };
            let n = loop {
                let n = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        raw.as_mut_ptr(),
                        raw.len() as c_int,
                        &ts,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &raw[..n] {
                let eof = ev.flags & EV_EOF != 0;
                events.push(Event {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ || eof,
                    writable: ev.filter == EVFILT_WRITE,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub(crate) struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness backend on this platform; use ServeMode::ThreadPool",
            ))
        }
        pub fn add(&self, _: RawFd, _: u64, _: bool, _: bool) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn modify(&self, _: RawFd, _: u64, _: bool, _: bool) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn remove(&self, _: RawFd) {
            unreachable!("stub poller cannot be constructed")
        }
        pub fn wait(&self, _: &mut Vec<Event>, _: Duration) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}
