//! Minimal offline stand-in for the [criterion] benchmark harness.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `criterion` crate cannot be fetched. This
//! vendored shim implements the (small) subset of its API that the
//! benches under `crates/bench/benches/` use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop and plain-text reporting. Swapping the
//! workspace back to the real crate is a one-line change in
//! `Cargo.toml` once a registry is reachable.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group. Only recorded for
/// reporting; the shim prints per-element / per-byte rates when set.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter
/// rendering, mirroring criterion's `BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager. Collects configuration and runs benchmark
/// closures, printing one line per measurement.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Criterion {
    /// Parses the arguments cargo passes to bench binaries
    /// (`--bench`, `--test`, `--list`, an optional name filter);
    /// unknown flags are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.test_mode = true,
                "--list" => self.list_only = true,
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(self, &id, 10, Duration::from_secs(1), None, f);
        self
    }

    /// No-op summary hook for `criterion_main!` parity.
    pub fn final_summary(&self) {}

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A group of benchmarks sharing throughput and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            self.criterion,
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            self.criterion,
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (Reporting is per-benchmark in this shim.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !criterion.selected(id) {
        return;
    }
    if criterion.list_only {
        println!("{id}: benchmark");
        return;
    }
    if criterion.test_mode {
        // `cargo test --benches` smoke: run the routine once, untimed.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: ok (test mode)");
        return;
    }

    // Calibrate: run one iteration to estimate cost, then pick an
    // iteration count aiming at measurement_time across sample_size
    // samples, capped to keep worst-case runtimes sane.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = measurement_time
        .div_f64(sample_size as f64)
        .max(Duration::from_micros(100));
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let deadline = Instant::now() + measurement_time;
    let mut samples = 0u32;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.div_f64(iters as f64);
        best = best.min(per_iter);
        total += per_iter;
        samples += 1;
        if Instant::now() > deadline {
            break;
        }
    }
    let mean = total.div_f64(samples.max(1) as f64);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  thrpt: {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            format!("  thrpt: {per_sec:.1} MiB/s")
        }
        None => String::new(),
    };
    println!("{id}: mean {mean:?}  best {best:?}  ({samples} samples x {iters} iters){rate}");
}

/// Declares a function that runs a set of benchmark targets, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
