//! Minimal offline stand-in for the [proptest] property-testing
//! framework.
//!
//! The build environment for this workspace cannot reach crates.io, so
//! the real `proptest` crate is unavailable. This vendored shim
//! implements the subset of the API that `tests/proptests.rs` uses:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * integer range strategies, tuple strategies, simple
//!   character-class regex string strategies,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`arbitrary::any`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support,
//!   and [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Generation is deterministic: each test derives its RNG seed from its
//! own fully-qualified name, so failures are reproducible run-to-run
//! and on CI. Unlike the real proptest there is **no shrinking** — a
//! failing case panics with the plain assertion message.
//!
//! [proptest]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal, with optional format context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts two values differ, with optional format context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests. Supports the block form used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(0u32..10, 0..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                { $body }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}
