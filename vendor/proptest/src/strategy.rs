//! The [`Strategy`] trait and its core combinators and primitive
//! implementations.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy simply draws a fresh value from the RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, usize);

// u64 needs widening care: `hi - lo + 1` can overflow u64 only for the
// full domain, which test strategies never request.
impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.below((hi - lo).checked_add(1).expect("full-domain range"))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

// String literals act as regex strategies, as in real proptest. Only
// the character-class subset this workspace needs is supported; see
// [`crate::string`].
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
