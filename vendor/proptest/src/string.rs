//! String generation from a small regex subset.
//!
//! Supported pattern shape: a sequence of atoms, where an atom is a
//! literal character or a character class `[...]` (literal members and
//! `a-z` style ranges), optionally followed by a `{lo,hi}` repetition.
//! This covers the patterns used by this workspace's property tests;
//! anything else panics loudly so an unsupported pattern is an obvious
//! test-authoring error rather than silent misgeneration.

use crate::test_runner::TestRng;

pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let mut members = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => members.push(chars.next().expect("escape at end")),
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = match chars.next() {
                                    Some(']') | None => {
                                        panic!("unterminated range in class: {pattern}")
                                    }
                                    Some(h) => h,
                                };
                                members.extend(lo..=hi);
                            } else {
                                members.push(lo);
                            }
                        }
                        None => panic!("unterminated character class: {pattern}"),
                    }
                }
                members
            }
            '\\' => vec![chars.next().expect("escape at end")],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex construct {c:?} in {pattern}")
            }
            lit => vec![lit],
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern}");

        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("expected {{lo,hi}} repetition in {pattern}"));
            (
                lo.trim().parse::<usize>().expect("repetition lower bound"),
                hi.trim().parse::<usize>().expect("repetition upper bound"),
            )
        } else {
            (1, 1)
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..len {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}
