//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `Vec<T>` strategy with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet<T>` strategy. The drawn size is a target; if the element
/// domain is too small to reach it, the set is as large as achievable
/// within a bounded number of draws (mirroring proptest's behaviour of
/// never looping forever on saturated domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 16 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
