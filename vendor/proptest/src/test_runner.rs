//! Deterministic RNG and per-block configuration.

/// Per-`proptest!`-block configuration. Only the field this workspace
/// uses (`cases`) is modelled.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A small, fast, deterministic PRNG (SplitMix64). Each property test
/// seeds one from its own name, making runs reproducible everywhere.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name via FNV-1a, so distinct tests explore
    /// distinct sequences while staying stable across runs.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sample range");
        // Lemire-style multiply-shift; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
