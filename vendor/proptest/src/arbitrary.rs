//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
